//! Binary BCH over GF(2^13) for bit-rot-style random single-bit errors.
//!
//! The RS ladder corrects byte/device-granular damage; for *sparse single
//! bit flips* (DRAM rot, cosmic-ray upsets in cold storage) a binary BCH
//! code reaches the same per-block guarantee at a fraction of the parity
//! bill. This module implements a shortened BCH(8191, 8191 − 13t, t) code:
//! each 1000-byte data block (8000 bits) gets `13·t` parity bits packed
//! into `⌈13t/8⌉` bytes, so a `t = 2` code costs 4 bytes per 1000 — 0.4 %
//! overhead versus 3.1 % for SEC-DED(72,64) — while correcting any 2 bit
//! flips per block with unknown locations.
//!
//! The field is GF(2^13) built on the primitive polynomial
//! x^13 + x^4 + x^3 + x + 1 (0x201B). Encoding is table-driven CRC-style
//! long division by the generator (the product of the minimal polynomials
//! of α¹…α^2t); decoding computes the 2t power-sum syndromes with a
//! byte-sliced Horner scan, runs Berlekamp–Massey for the error locator,
//! Chien-searches the shortened coordinate range, flips the located bits,
//! and re-verifies the syndromes before declaring success — miscorrection
//! is reported as [`EccError::Uncorrectable`], never silent.

use crate::codec::{
    multi_correct_rate_per_mb, Capability, CorrectionReport, EccError, EccScheme, MB,
};
use std::sync::OnceLock;

/// Field size exponent: GF(2^13).
const GF_BITS: usize = 13;
/// Multiplicative group order (= codeword length of the parent code).
const GF_ORD: usize = (1 << GF_BITS) - 1; // 8191
/// Primitive polynomial x^13 + x^4 + x^3 + x + 1.
const GF_POLY: u32 = 0x201B;
/// Data bytes per BCH block (8000 bits + 13t parity ≤ 8191 total).
pub const BCH_BLOCK: usize = 1000;

struct Gf13 {
    /// α^i for i in 0..2·8191 (doubled so `exp[log a + log b]` needs no mod).
    exp: Vec<u16>,
    /// log base α; index 0 unused.
    log: Vec<u16>,
}

fn tables() -> &'static Gf13 {
    static TABLES: OnceLock<Gf13> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * GF_ORD];
        let mut log = vec![0u16; GF_ORD + 1];
        let mut x = 1u32;
        for (i, slot) in exp.iter_mut().take(GF_ORD).enumerate() {
            // arc-lint: allow(no-lossy-cast, x is reduced below 2^13 each step)
            *slot = x as u16;
            if let Some(l) = log.get_mut(x as usize) {
                // arc-lint: allow(no-lossy-cast, i < GF_ORD = 8191 < 2^16)
                *l = i as u16;
            }
            x <<= 1;
            if x & (1 << GF_BITS) != 0 {
                x ^= GF_POLY;
            }
        }
        let (first, doubled) = exp.split_at_mut(GF_ORD);
        doubled.copy_from_slice(first);
        Gf13 { exp, log }
    })
}

#[inline]
fn gf_mul(gf: &Gf13, a: u16, b: u16) -> u16 {
    if a == 0 || b == 0 {
        return 0;
    }
    // arc-lint: bounded(log values are < 8191 so the sum is < 2·8191 = exp len)
    gf.exp[gf.log[a as usize] as usize + gf.log[b as usize] as usize]
}

#[inline]
fn gf_inv(gf: &Gf13, a: u16) -> u16 {
    // Caller guarantees a != 0 (Berlekamp–Massey divides only by a nonzero
    // previous discrepancy).
    // arc-lint: bounded(8191 - log a is in 1..=8191 which is < exp len)
    gf.exp[GF_ORD - gf.log[a as usize] as usize]
}

/// α^e for e in 0..8191.
#[inline]
fn gf_pow_alpha(gf: &Gf13, e: usize) -> u16 {
    // arc-lint: bounded(e is reduced mod 8191 before the lookup)
    gf.exp[e % GF_ORD]
}

/// Shortened binary BCH(8191, 8191 − 13t, t) over 1000-byte blocks.
#[derive(Debug, Clone)]
pub struct Bch {
    t: usize,
    /// Generator polynomial (binary, monic, degree 13t) as a bit vector.
    gen: u64,
    /// deg gen = 13t.
    deg: usize,
    /// Parity bytes per block: ⌈13t/8⌉.
    pbytes: usize,
    /// CRC-style byte step table: `tbl[v] = (v·x^deg) mod gen`.
    enc_tbl: Vec<u64>,
    /// Per-syndrome α^j (j = 1..=2t).
    syn_alpha: Vec<u16>,
    /// Per-syndrome byte step (α^j)^8.
    syn_step: Vec<u16>,
    /// Per-syndrome byte evaluation table: entry v = Σ bit_m(v)·(α^j)^(7−m).
    syn_tbl: Vec<Vec<u16>>,
}

/// Multiply two binary polynomials held as bit vectors (carry-less).
fn bitpoly_mul(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    let mut a = a;
    let mut shift = 0;
    while a != 0 {
        if a & 1 != 0 {
            out ^= b << shift;
        }
        a >>= 1;
        shift += 1;
    }
    out
}

/// Minimal polynomial of α^i over GF(2), returned as a bit vector.
fn minimal_poly(gf: &Gf13, i: usize) -> Result<u64, EccError> {
    // Cyclotomic coset of i mod 8191.
    let mut coset = Vec::new();
    let mut j = i % GF_ORD;
    loop {
        coset.push(j);
        j = (j * 2) % GF_ORD;
        if j == i % GF_ORD {
            break;
        }
    }
    // Product of (x + α^j) over the coset, coefficients in GF(2^13).
    let mut poly: Vec<u16> = vec![1];
    for &j in &coset {
        let root = gf_pow_alpha(gf, j);
        let mut next = vec![0u16; poly.len() + 1];
        for (k, &c) in poly.iter().enumerate() {
            next[k + 1] ^= c;
            next[k] ^= gf_mul(gf, c, root);
        }
        poly = next;
    }
    // A minimal polynomial over GF(2) must have 0/1 coefficients.
    let mut bits = 0u64;
    for (k, &c) in poly.iter().enumerate() {
        match c {
            0 => {}
            1 => bits |= 1 << k,
            _ => {
                return Err(EccError::InvalidConfig(format!(
                    "bch: minimal polynomial of alpha^{i} has a non-binary coefficient"
                )))
            }
        }
    }
    Ok(bits)
}

impl Bch {
    /// Create a `t`-error-correcting code, `t` in 1..=4 (13t parity bits
    /// per 1000-byte block).
    pub fn new(t: usize) -> Result<Bch, EccError> {
        if !(1..=4).contains(&t) {
            return Err(EccError::InvalidConfig(format!("bch: t must be in 1..=4, got {t}")));
        }
        let gf = tables();
        // g(x) = lcm of minimal polynomials of α^1..α^2t; even powers share
        // the coset of an odd power, so odd representatives suffice.
        let mut gen = 1u64;
        let mut seen: Vec<u64> = Vec::new();
        for i in (1..2 * t).step_by(2) {
            let mp = minimal_poly(gf, i)?;
            if !seen.contains(&mp) {
                gen = bitpoly_mul(gen, mp);
                seen.push(mp);
            }
        }
        let deg = (63 - gen.leading_zeros()) as usize;
        if deg != GF_BITS * t {
            return Err(EccError::InvalidConfig(format!(
                "bch: generator degree {deg}, expected {}",
                GF_BITS * t
            )));
        }
        let pbytes = deg.div_ceil(8);

        // enc_tbl[v] = (v(x)·x^deg) mod g(x).
        let mut enc_tbl = vec![0u64; 256];
        for (v, slot) in enc_tbl.iter_mut().enumerate() {
            let mut r = (v as u64) << deg;
            for bit in (deg..deg + 8).rev() {
                if r & (1 << bit) != 0 {
                    r ^= gen << (bit - deg);
                }
            }
            *slot = r;
        }

        let mut syn_alpha = Vec::with_capacity(2 * t);
        let mut syn_step = Vec::with_capacity(2 * t);
        let mut syn_tbl = Vec::with_capacity(2 * t);
        for j in 1..=2 * t {
            let a = gf_pow_alpha(gf, j);
            syn_alpha.push(a);
            syn_step.push(gf_pow_alpha(gf, 8 * j));
            let mut tbl = vec![0u16; 256];
            for (v, slot) in tbl.iter_mut().enumerate() {
                let mut s = 0u16;
                for m in 0..8 {
                    s = gf_mul(gf, s, a);
                    if v & (0x80 >> m) != 0 {
                        s ^= 1;
                    }
                }
                *slot = s;
            }
            syn_tbl.push(tbl);
        }

        Ok(Bch { t, gen, deg, pbytes, enc_tbl, syn_alpha, syn_step, syn_tbl })
    }

    /// Correctable bit errors per block.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Generator polynomial as a bit vector (bit k = coefficient of x^k).
    pub fn generator(&self) -> u64 {
        self.gen
    }

    /// Parity remainder for one data block: `(m(x)·x^deg) mod g(x)`.
    fn encode_block(&self, block: &[u8]) -> u64 {
        let mask = (1u64 << self.deg) - 1;
        let mut rem = 0u64;
        for &byte in block {
            let top = ((rem >> (self.deg - 8)) & 0xFF) as usize ^ byte as usize;
            // arc-lint: bounded(top is an 8-bit value; enc_tbl has 256 entries)
            rem = ((rem << 8) & mask) ^ self.enc_tbl[top];
        }
        rem
    }

    /// Power-sum syndromes S_1..S_2t of `block ‖ rem` (the full codeword).
    fn syndromes(&self, gf: &Gf13, block: &[u8], rem: u64) -> Vec<u16> {
        // arc-lint: bounded(Bch::new caps t at 4, so this allocates ≤ 8 slots)
        let mut out = Vec::with_capacity(2 * self.t);
        for j in 0..2 * self.t {
            // arc-lint: bounded(syn_* vectors all have exactly 2t entries)
            let (step, alpha, tbl) = (self.syn_step[j], self.syn_alpha[j], &self.syn_tbl[j]);
            let mut s = 0u16;
            for &byte in block {
                // arc-lint: bounded(byte indexes a 256-entry table)
                s = gf_mul(gf, s, step) ^ tbl[byte as usize];
            }
            for q in (0..self.deg).rev() {
                // arc-lint: allow(no-lossy-cast, masked to a single bit)
                s = gf_mul(gf, s, alpha) ^ ((rem >> q) & 1) as u16;
            }
            out.push(s);
        }
        out
    }

    /// Berlekamp–Massey: error-locator polynomial from the syndromes.
    /// Returns `None` when the locator degree exceeds `t`.
    fn error_locator(&self, gf: &Gf13, s: &[u16]) -> Option<Vec<u16>> {
        let mut sigma: Vec<u16> = vec![1];
        let mut prev: Vec<u16> = vec![1];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u16;
        for n in 0..2 * self.t {
            let mut d = *s.get(n)?;
            for i in 1..=l.min(sigma.len().saturating_sub(1)) {
                // arc-lint: bounded(i ≤ n keeps both lookups in range)
                d ^= gf_mul(gf, sigma[i], s[n - i]);
            }
            if d == 0 {
                m += 1;
                continue;
            }
            let coef = gf_mul(gf, d, gf_inv(gf, b));
            let update = |sigma: &mut Vec<u16>, prev: &[u16], m: usize| {
                if sigma.len() < prev.len() + m {
                    sigma.resize(prev.len() + m, 0);
                }
                for (i, &c) in prev.iter().enumerate() {
                    // arc-lint: bounded(sigma was just resized to fit i + m)
                    sigma[i + m] ^= gf_mul(gf, coef, c);
                }
            };
            if 2 * l <= n {
                let keep = sigma.clone();
                update(&mut sigma, &prev, m);
                l = n + 1 - l;
                prev = keep;
                b = d;
                m = 1;
            } else {
                update(&mut sigma, &prev, m);
                m += 1;
            }
        }
        while sigma.last() == Some(&0) {
            sigma.pop();
        }
        (l <= self.t && sigma.len() == l + 1).then_some(sigma)
    }

    /// Chien search over the shortened coordinate range: returns the
    /// coefficient degrees where σ(α^{-e}) = 0, or `None` when the root
    /// count does not match deg σ (uncorrectable).
    fn chien(&self, gf: &Gf13, sigma: &[u16], total_bits: usize) -> Option<Vec<usize>> {
        let expect = sigma.len().saturating_sub(1);
        // arc-lint: bounded(deg σ ≤ t ≤ 4 — berlekamp_massey caps sigma.len())
        let mut roots = Vec::with_capacity(expect);
        for e in 0..total_bits.min(GF_ORD) {
            let x_inv = gf_pow_alpha(gf, GF_ORD - e % GF_ORD);
            let mut val = 0u16;
            for &c in sigma.iter().rev() {
                val = gf_mul(gf, val, x_inv) ^ c;
            }
            if val == 0 {
                roots.push(e);
                if roots.len() > expect {
                    return None;
                }
            }
        }
        (roots.len() == expect).then_some(roots)
    }

    /// Verify and correct one block in place. `rem` is the unpacked parity
    /// remainder; the (possibly repaired) remainder is returned.
    fn correct_block(&self, block: &mut [u8], rem: u64) -> Result<(u64, u64), EccError> {
        let gf = tables();
        let s = self.syndromes(gf, block, rem);
        if s.iter().all(|&x| x == 0) {
            return Ok((rem, 0));
        }
        let uncorrectable = |detail: String| EccError::Uncorrectable { scheme: "bch", detail };
        let sigma = self
            .error_locator(gf, &s)
            .ok_or_else(|| uncorrectable(format!("more than t = {} bit errors", self.t)))?;
        let total_bits = 8 * block.len() + self.deg;
        let roots = self
            .chien(gf, &sigma, total_bits)
            .ok_or_else(|| uncorrectable("error locator has roots outside the block".into()))?;
        let mut rem = rem;
        for &e in &roots {
            // Coefficient degree e ↔ bit index k from the block start.
            let k = total_bits - 1 - e;
            if let Some(byte) = block.get_mut(k / 8) {
                *byte ^= 0x80 >> (k % 8);
            } else {
                // Parity bit: msb-first index (k − 8·len) within deg bits.
                let q = self.deg - 1 - (k - 8 * block.len());
                rem ^= 1 << q;
            }
        }
        // Paranoia: a repaired codeword must have all-zero syndromes.
        if self.syndromes(gf, block, rem).iter().any(|&x| x != 0) {
            return Err(uncorrectable("correction did not re-verify".into()));
        }
        Ok((rem, roots.len() as u64))
    }

    fn pack_rem(&self, rem: u64, slot: &mut [u8]) {
        for (k, byte) in slot.iter_mut().enumerate() {
            // arc-lint: allow(no-lossy-cast, deliberate byte extraction from rem)
            *byte = (rem >> (8 * (self.pbytes - 1 - k))) as u8;
        }
    }

    fn unpack_rem(&self, slot: &[u8]) -> u64 {
        let mut rem = 0u64;
        for &byte in slot {
            rem = (rem << 8) | byte as u64;
        }
        // High padding bits (8·pbytes − deg of them) carry no information;
        // mask them so a flip there cannot masquerade as a parity error.
        rem & ((1u64 << self.deg) - 1)
    }
}

impl EccScheme for Bch {
    fn name(&self) -> &'static str {
        "bch"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        data_len.div_ceil(BCH_BLOCK) * self.pbytes
    }

    fn storage_overhead(&self) -> f64 {
        self.pbytes as f64 / BCH_BLOCK as f64
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        for (block, slot) in data.chunks(BCH_BLOCK).zip(parity.chunks_mut(self.pbytes)) {
            let rem = self.encode_block(block);
            self.pack_rem(rem, slot);
        }
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!("bch parity region {} bytes, expected {expected}", parity.len()),
            });
        }
        let mut report = CorrectionReport::default();
        for (block, slot) in data.chunks_mut(BCH_BLOCK).zip(parity.chunks_mut(self.pbytes)) {
            report.blocks_checked += 1;
            let rem = self.unpack_rem(slot);
            let (fixed_rem, fixed) = self.correct_block(block, rem)?;
            if fixed > 0 {
                self.pack_rem(fixed_rem, slot);
                report.corrected_bits += fixed;
            }
        }
        Ok(report)
    }

    fn capability(&self) -> Capability {
        Capability {
            detects_sparse: true,
            corrects_sparse: true,
            // A byte-granular burst dumps ≥ 8 adjacent bit errors into one
            // block — beyond t ≤ 4. Wrap in `Interleaved` for bursts.
            corrects_burst: false,
            correctable_per_mb: multi_correct_rate_per_mb(MB / BCH_BLOCK as f64, self.t),
        }
    }

    fn min_bytes_per_thread(&self) -> usize {
        1 << 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 29) ^ (i >> 7)) as u8).collect()
    }

    #[test]
    fn field_tables_are_primitive() {
        let gf = tables();
        let mut seen = vec![false; GF_ORD + 1];
        for i in 0..GF_ORD {
            let v = gf.exp[i] as usize;
            assert!(v >= 1 && v <= GF_ORD);
            assert!(!seen[v], "alpha^{i} repeats: 0x201B would not be primitive");
            seen[v] = true;
        }
        assert_eq!(gf.exp[GF_ORD], 1, "alpha^8191 must wrap to 1");
        // mul/inv sanity.
        for a in [1u16, 2, 1000, 8191] {
            assert_eq!(gf_mul(gf, a, gf_inv(gf, a)), 1);
        }
    }

    #[test]
    fn validates_t_and_generator_degree() {
        assert!(Bch::new(0).is_err());
        assert!(Bch::new(5).is_err());
        for t in 1..=4 {
            let b = Bch::new(t).unwrap();
            assert_eq!(63 - b.generator().leading_zeros() as usize, GF_BITS * t);
            assert_eq!(b.parity_len(BCH_BLOCK), (GF_BITS * t).div_ceil(8));
        }
    }

    #[test]
    fn clean_round_trip_various_sizes() {
        let b = Bch::new(2).unwrap();
        for n in [0usize, 1, 999, 1000, 1001, 5000, 12_345] {
            let data = sample(n);
            let enc = b.encode(&data);
            assert_eq!(enc.len(), n + b.parity_len(n));
            let (out, report) = b.decode(&enc, n).unwrap();
            assert_eq!(out, data, "n={n}");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn corrects_t_bit_flips_per_block() {
        for t in 1..=4 {
            let b = Bch::new(t).unwrap();
            let data = sample(3 * BCH_BLOCK + 17);
            let enc = b.encode(&data);
            let mut bad = enc.clone();
            // t flips in block 0, t flips in block 2, t in the tail block.
            for k in 0..t {
                bad[10 + 97 * k] ^= 1 << (k % 8);
                bad[2 * BCH_BLOCK + 3 + 101 * k] ^= 1 << ((k + 3) % 8);
                bad[3 * BCH_BLOCK + k] ^= 1 << ((k + 5) % 8);
            }
            let (out, report) = b.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "t={t}");
            assert_eq!(report.corrected_bits, 3 * t as u64);
        }
    }

    #[test]
    fn corrects_flips_in_parity_region() {
        let b = Bch::new(2).unwrap();
        let data = sample(2 * BCH_BLOCK);
        let enc = b.encode(&data);
        let mut bad = enc.clone();
        // One data flip + one parity-region flip in block 0.
        bad[500] ^= 0x10;
        bad[data.len() + b.parity_len(data.len()) / 2 - 1] ^= 0x01;
        let (out, report) = b.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_bits >= 1);
    }

    #[test]
    fn overload_is_detected_not_silent() {
        let b = Bch::new(2).unwrap();
        let data = sample(BCH_BLOCK);
        let enc = b.encode(&data);
        let mut failures = 0;
        for seed in 0..8u64 {
            let mut bad = enc.clone();
            // 5 > t = 2 bit flips in one block.
            for k in 0..5u64 {
                let bit = (seed * 1237 + k * 1031) % (BCH_BLOCK as u64 * 8);
                bad[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            match b.decode(&bad, data.len()) {
                Err(_) => failures += 1,
                Ok((out, _)) => assert_ne!(out, data, "silent miscorrection at seed {seed}"),
            }
        }
        assert!(failures > 0, "at least some overloads must surface as errors");
    }

    #[test]
    fn overhead_beats_secded() {
        let b = Bch::new(2).unwrap();
        assert!(b.storage_overhead() < 0.005);
        let cap = b.capability();
        assert!(cap.corrects_sparse && !cap.corrects_burst);
        assert!(cap.correctable_per_mb >= 30.0, "rate={}", cap.correctable_per_mb);
    }

    #[test]
    fn malformed_parity_length_rejected() {
        let b = Bch::new(1).unwrap();
        let mut data = sample(100);
        let mut parity = vec![0u8; 1];
        assert!(matches!(
            b.verify_and_correct(&mut data, &mut parity),
            Err(EccError::Malformed { .. })
        ));
    }
}
