//! Device-oriented Reed-Solomon coding (the Jerasure substitution).
//!
//! The paper encodes with Jerasure: the buffer is split into `k` *data
//! devices* and `m` *code devices* are produced; any `m` corrupted devices can
//! be repaired (§2.2). Jerasure is an erasure code — repair requires knowing
//! *which* devices failed — so this codec stores a CRC-32 per device and
//! declares devices whose checksum mismatches as erased, then reconstructs
//! them by solving the generator system over GF(2^8).
//!
//! The generator is a Cauchy matrix (`C[j][i] = 1 / (x_j ⊕ y_i)`), whose every
//! square submatrix is invertible, making the code MDS: any `k` surviving
//! devices determine the data. This is the same family Jerasure's
//! `cauchy_good` coding uses. GF(2^8) symbols cap `k + m` at 255 (Jerasure's
//! `w = 16` allows 256, so the paper's (241,15) and (153,103) configurations
//! map to the nearest `k + m = 255` points — see DESIGN.md §2).
//!
//! Throughput asymmetry matches the paper: encoding pays `O(m·len)` field
//! multiplications (slow, Fig 8d), an error-free decode is a CRC sweep at
//! memory speed (fast, Fig 9d), and repairs pay Gaussian elimination plus
//! reconstruction (the Fig 10 cliff).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::codec::{Capability, CorrectionReport, EccError, EccScheme};
use crate::crc::{crc32, crc32_zero_padded, CRC_LEN};
use crate::gf256::{mul_acc_slice, xor_slice, Gf};
use crate::schedule::{schedule_for, ScheduleStats};

/// Maximum total device count (`k + m`) representable in GF(2^8) with the
/// Cauchy construction used here.
pub const MAX_DEVICES: usize = 255;

/// Which kernel family the Reed-Solomon encode/syndrome paths run on.
///
/// Both backends produce byte-identical parity (the equivalence tests pin
/// this); the choice is purely a throughput policy, resolved once per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsBackend {
    /// Pick automatically: table-driven when a byte-shuffle/GFNI SIMD kernel
    /// exists (it beats plane transposition there), scheduled-XOR otherwise
    /// (the u64 XOR program beats the scalar table loop).
    Auto,
    /// Byte-wise GF(2^8) multiply-accumulate through the `gf256` kernels.
    Table,
    /// Compiled bit-plane XOR program from [`crate::schedule`].
    Scheduled,
}

/// Process-wide backend override: 0 = auto, 1 = table, 2 = scheduled.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Force a specific Reed-Solomon backend (tests, benches, and the hostile
/// harness use this to pin coverage of both kernel families).
pub fn set_rs_backend(b: RsBackend) {
    let v = match b {
        RsBackend::Auto => 0,
        RsBackend::Table => 1,
        RsBackend::Scheduled => 2,
    };
    BACKEND.store(v, Ordering::Relaxed);
}

/// The backend encode/syndromes will actually run on (never `Auto`).
pub fn resolved_rs_backend() -> RsBackend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => RsBackend::Table,
        2 => RsBackend::Scheduled,
        _ => {
            if crate::gf256::has_simd() {
                RsBackend::Table
            } else {
                RsBackend::Scheduled
            }
        }
    }
}

thread_local! {
    /// Reusable bit-plane scratch for the scheduled executor: steady-state
    /// encode stays allocation-free once a worker has seen its (k, m).
    static PLANE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };

    /// Last coefficient matrix this thread fetched. Pool workers encode many
    /// chunks of one configuration back to back; this memo keeps them off
    /// the global `Mutex` after the first fetch.
    static LAST_COEFFS: RefCell<CoeffMemo> = const { RefCell::new(None) };
}

/// `(k, m)` plus the coefficient matrix it maps to, for the thread-local
/// last-used slot.
type CoeffMemo = Option<((usize, usize), Arc<[Gf]>)>;

/// Run `f` over this thread's scratch buffer, grown to at least `len`.
fn with_plane_scratch<R>(len: usize, f: impl FnOnce(&mut [u8]) -> R) -> R {
    PLANE_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        if buf.len() < len {
            // arc-lint: bounded(scratch for MAX_TEMPS-capped schedules over planes of an in-memory buffer)
            buf.resize(len, 0);
        }
        f(&mut buf[..len])
    })
}

/// Per-(k,m) cache of the row-major m×k Cauchy coefficient matrix.
///
/// `ReedSolomon` stays `Copy` (it is embedded in the `Copy` configuration
/// space the trainer enumerates), so the matrix lives behind a process-wide
/// memo warmed at construction: encode and erasure repair fetch one `Arc`
/// clone per chunk instead of recomputing k·m field inversions, and the
/// steady-state fetch performs no allocation (the counting-allocator tests
/// pin this).
type CoeffCache = Mutex<HashMap<(usize, usize), Arc<[Gf]>>>;
static COEFF_CACHE: OnceLock<CoeffCache> = OnceLock::new();

/// Reed-Solomon configuration: `k` data devices protected by `m` code devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReedSolomon {
    /// Number of data devices the buffer is split into.
    pub k: usize,
    /// Number of code (parity) devices produced; up to `m` corrupted devices
    /// are repairable.
    pub m: usize,
}

impl ReedSolomon {
    /// Create a configuration, validating `k ≥ 1`, `m ≥ 1`, `k + m ≤ 255`.
    pub fn new(k: usize, m: usize) -> Result<ReedSolomon, EccError> {
        if k == 0 || m == 0 {
            return Err(EccError::InvalidConfig("rs: k and m must be >= 1".into()));
        }
        if k + m > MAX_DEVICES {
            return Err(EccError::InvalidConfig(format!(
                "rs: k + m = {} exceeds GF(2^8) limit of {MAX_DEVICES}",
                k + m
            )));
        }
        let rs = ReedSolomon { k, m };
        // Build the coefficient matrix now so every later encode/repair is a
        // cache hit (and allocation-free).
        let _ = rs.coeff_matrix();
        Ok(rs)
    }

    /// The cached m×k Cauchy coefficient matrix, row-major: entry
    /// `j * k + i` is `coeff(j, i)`.
    fn coeff_matrix(&self) -> Arc<[Gf]> {
        let key = (self.k, self.m);
        let hit = LAST_COEFFS.with(|slot| {
            slot.borrow().as_ref().and_then(|(k, c)| if *k == key { Some(c.clone()) } else { None })
        });
        if let Some(c) = hit {
            return c;
        }
        let cache = COEFF_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        // A poisoned lock only means another thread died mid-insert; the
        // cache itself is a plain memo table, so recover the guard.
        let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
        let coeffs = map
            .entry(key)
            .or_insert_with(|| {
                // arc-lint: bounded(m, k <= 255 so the matrix is at most 255x255 coefficients)
                let mut rows = Vec::with_capacity(self.m * self.k);
                for j in 0..self.m {
                    for i in 0..self.k {
                        rows.push(self.coeff(j, i));
                    }
                }
                rows.into()
            })
            .clone();
        drop(map);
        LAST_COEFFS.with(|slot| *slot.borrow_mut() = Some((key, coeffs.clone())));
        coeffs
    }

    /// Compile (memoized) and return the XOR-schedule statistics for this
    /// configuration. `ecc_baseline` surfaces these into `BENCH_ecc.json`.
    pub fn schedule_stats(&self) -> ScheduleStats {
        schedule_for(&self.coeff_matrix(), self.k, self.m).stats
    }

    /// Cauchy generator coefficient for code device `j`, data device `i`.
    ///
    /// `x_j = j` (code rows) and `y_i = m + i` (data columns) are disjoint for
    /// `k + m ≤ 255`, so `x_j ⊕ y_i ≠ 0` — wait, disjointness of the *sets*
    /// guarantees `x_j ≠ y_i`, hence the XOR is non-zero and invertible.
    #[inline]
    fn coeff(&self, j: usize, i: usize) -> Gf {
        Gf((j as u8) ^ ((self.m + i) as u8)).inv()
    }

    /// Device size for a given buffer length.
    pub fn device_size(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.k)
    }

    /// Byte range of data device `i` within the buffer (may be empty for
    /// trailing devices of short buffers).
    fn data_device_range(&self, data_len: usize, i: usize) -> std::ops::Range<usize> {
        let d = self.device_size(data_len);
        let start = (i * d).min(data_len);
        let end = ((i + 1) * d).min(data_len);
        start..end
    }

    /// Number of CRC table bytes.
    fn crc_table_len(&self) -> usize {
        (self.k + self.m) * CRC_LEN
    }

    /// Rebuild the erased data devices listed in `bad_data` from the good
    /// devices, writing results into `recovered` (one `device_size`-length
    /// vector per bad device, same order).
    fn solve_erasures(
        &self,
        data: &[u8],
        parity_devs: &[u8],
        d: usize,
        bad_data: &[usize],
        good_parity: &[usize],
    ) -> Result<Vec<Vec<u8>>, EccError> {
        let t = bad_data.len();
        if t == 0 {
            return Ok(vec![]);
        }
        if good_parity.len() < t {
            return Err(EccError::Uncorrectable {
                scheme: "rs",
                detail: format!(
                    "{t} data device(s) lost but only {} intact code device(s)",
                    good_parity.len()
                ),
            });
        }
        let rows = &good_parity[..t];
        let coeffs = self.coeff_matrix();
        // rhs_r = parity[rows[r]] − Σ_{good i} C[rows[r]][i]·data_i
        // arc-lint: bounded(t <= m <= 255 erasure rows)
        let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(t);
        if resolved_rs_backend() == RsBackend::Scheduled {
            // Syndromes through the scheduled kernel: recompute the full
            // parity with the erased devices read as zero, then each rhs row
            // is stored ⊕ recomputed. Same XOR program as encode.
            let sched = schedule_for(&coeffs, self.k, self.m);
            // arc-lint: bounded(m <= 255 planes of a payload already held in memory)
            let mut recomputed = vec![0u8; self.m * d];
            with_plane_scratch(sched.scratch_len(), |scratch| {
                sched.encode_into(data, d, &mut recomputed, bad_data, scratch);
            });
            for &j in rows {
                let mut acc = parity_devs[j * d..(j + 1) * d].to_vec();
                xor_slice(&mut acc, &recomputed[j * d..(j + 1) * d]);
                rhs.push(acc);
            }
        } else {
            for &j in rows {
                let mut acc = parity_devs[j * d..(j + 1) * d].to_vec();
                let row = &coeffs[j * self.k..(j + 1) * self.k];
                for (i, &c) in row.iter().enumerate() {
                    if bad_data.contains(&i) {
                        continue;
                    }
                    let range = self.data_device_range(data.len(), i);
                    mul_acc_slice(&mut acc[..range.len()], &data[range], c);
                }
                rhs.push(acc);
            }
        }
        // Dense t×t system: A[r][c] = C[rows[r]][bad_data[c]].
        // arc-lint: bounded(t <= m <= 255 so the system is at most 255x255)
        let mut a = vec![Gf::ZERO; t * t];
        for (r, &j) in rows.iter().enumerate() {
            for (c, &i) in bad_data.iter().enumerate() {
                a[r * t + c] = coeffs[j * self.k + i];
            }
        }
        // Gauss-Jordan with partial pivoting over GF(2^8); row operations are
        // mirrored onto the rhs device vectors.
        for col in 0..t {
            let pivot_row = (col..t).find(|&r| a[r * t + col] != Gf::ZERO).ok_or_else(|| {
                EccError::Uncorrectable {
                    scheme: "rs",
                    detail: "singular erasure system (should be impossible for Cauchy)".into(),
                }
            })?;
            if pivot_row != col {
                for c in 0..t {
                    a.swap(pivot_row * t + c, col * t + c);
                }
                rhs.swap(pivot_row, col);
            }
            let inv = a[col * t + col].inv();
            for c in 0..t {
                a[col * t + c] = a[col * t + c].mul(inv);
            }
            crate::gf256::scale_slice(&mut rhs[col], inv);
            for r in 0..t {
                if r == col || a[r * t + col] == Gf::ZERO {
                    continue;
                }
                let factor = a[r * t + col];
                for c in 0..t {
                    a[r * t + c] = a[r * t + c].add(factor.mul(a[col * t + c]));
                }
                let (src, dst) = if r < col {
                    let (lo, hi) = rhs.split_at_mut(col);
                    (&hi[0], &mut lo[r])
                } else {
                    let (lo, hi) = rhs.split_at_mut(r);
                    (&lo[col], &mut hi[0])
                };
                mul_acc_slice(dst, src, factor);
            }
        }
        Ok(rhs)
    }
}

impl EccScheme for ReedSolomon {
    fn name(&self) -> &'static str {
        "rs"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        if data_len == 0 {
            return 0;
        }
        self.m * self.device_size(data_len) + self.crc_table_len()
    }

    fn storage_overhead(&self) -> f64 {
        // CRC table is O(1) per buffer; the asymptotic cost is m/k.
        self.m as f64 / self.k as f64
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        if data.is_empty() {
            return;
        }
        parity.fill(0);
        let d = self.device_size(data.len());
        let coeffs = self.coeff_matrix();
        let (parity_devs, crc_table) = parity.split_at_mut(self.m * d);
        if resolved_rs_backend() == RsBackend::Scheduled {
            let sched = schedule_for(&coeffs, self.k, self.m);
            with_plane_scratch(sched.scratch_len(), |scratch| {
                sched.encode_into(data, d, parity_devs, &[], scratch);
            });
        } else {
            for j in 0..self.m {
                let dev = &mut parity_devs[j * d..(j + 1) * d];
                let row = &coeffs[j * self.k..(j + 1) * self.k];
                for (i, &c) in row.iter().enumerate() {
                    let range = self.data_device_range(data.len(), i);
                    mul_acc_slice(&mut dev[..range.len()], &data[range], c);
                }
            }
        }
        for i in 0..self.k {
            let range = self.data_device_range(data.len(), i);
            let pad = d - range.len();
            let c = crc32_zero_padded(&data[range], pad);
            crc_table[i * CRC_LEN..(i + 1) * CRC_LEN].copy_from_slice(&c.to_le_bytes());
        }
        for j in 0..self.m {
            let c = crc32(&parity_devs[j * d..(j + 1) * d]);
            let idx = self.k + j;
            crc_table[idx * CRC_LEN..(idx + 1) * CRC_LEN].copy_from_slice(&c.to_le_bytes());
        }
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!("rs parity region {} bytes, expected {expected}", parity.len()),
            });
        }
        if data.is_empty() {
            return Ok(CorrectionReport::default());
        }
        let d = self.device_size(data.len());
        let (parity_devs, crc_table) = parity.split_at_mut(self.m * d);
        let stored_crc = |idx: usize| {
            // Clamped copy: the parity-region length check above guarantees a
            // full entry, and a short read decodes as zero instead of aborting.
            let start = (idx * CRC_LEN).min(crc_table.len());
            let end = (start + CRC_LEN).min(crc_table.len());
            let mut w = [0u8; CRC_LEN];
            w[..end - start].copy_from_slice(&crc_table[start..end]);
            u32::from_le_bytes(w)
        };
        // Fast path: a full CRC sweep locates corrupt devices.
        let mut bad_data = Vec::new();
        for i in 0..self.k {
            let range = self.data_device_range(data.len(), i);
            let pad = d - range.len();
            if crc32_zero_padded(&data[range], pad) != stored_crc(i) {
                bad_data.push(i);
            }
        }
        let mut bad_parity = Vec::new();
        let mut good_parity = Vec::new();
        for j in 0..self.m {
            if crc32(&parity_devs[j * d..(j + 1) * d]) != stored_crc(self.k + j) {
                bad_parity.push(j);
            } else {
                good_parity.push(j);
            }
        }
        let total_bad = bad_data.len() + bad_parity.len();
        let mut report =
            CorrectionReport { blocks_checked: (self.k + self.m) as u64, ..Default::default() };
        if total_bad == 0 {
            return Ok(report);
        }
        if total_bad > self.m {
            return Err(EccError::Uncorrectable {
                scheme: "rs",
                detail: format!(
                    "{} corrupt device(s) exceed correction capability m = {}",
                    total_bad, self.m
                ),
            });
        }
        // Repair path: reconstruct erased data devices, then rebuild any
        // corrupt parity devices and refresh their checksums.
        let recovered = self.solve_erasures(data, parity_devs, d, &bad_data, &good_parity)?;
        for (slot, &i) in bad_data.iter().enumerate() {
            let range = self.data_device_range(data.len(), i);
            let len = range.len();
            data[range.clone()].copy_from_slice(&recovered[slot][..len]);
            let c = crc32_zero_padded(&data[range], d - len);
            crc_table[i * CRC_LEN..(i + 1) * CRC_LEN].copy_from_slice(&c.to_le_bytes());
            report.corrected_devices += 1;
        }
        let coeffs = self.coeff_matrix();
        for &j in &bad_parity {
            let dev = &mut parity_devs[j * d..(j + 1) * d];
            dev.fill(0);
            let row = &coeffs[j * self.k..(j + 1) * self.k];
            for (i, &c) in row.iter().enumerate() {
                let range = self.data_device_range(data.len(), i);
                mul_acc_slice(&mut dev[..range.len()], &data[range], c);
            }
            let c = crc32(dev);
            let idx = self.k + j;
            crc_table[idx * CRC_LEN..(idx + 1) * CRC_LEN].copy_from_slice(&c.to_le_bytes());
            report.corrected_devices += 1;
        }
        Ok(report)
    }

    /// RS encode is the slowest kernel in the crate, so even 1 MiB of work
    /// per worker amortizes thread dispatch; the lighter schemes keep the
    /// larger default floor.
    fn min_bytes_per_thread(&self) -> usize {
        1 << 20
    }

    fn capability(&self) -> Capability {
        Capability {
            detects_sparse: true,
            corrects_sparse: true,
            corrects_burst: true,
            // Up to m corrupt devices per protected buffer; ARC's parallel
            // driver encodes ~1 MiB chunks, so per-MB capability ≈ m when
            // errors land in distinct devices (bursts cost one device per
            // device-span they touch).
            correctable_per_mb: self.m as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 2654435761usize) >> 13) as u8).collect()
    }

    #[test]
    fn validates_configuration() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
        assert!(ReedSolomon::new(1, 1).is_ok());
    }

    #[test]
    fn cauchy_coefficients_are_nonzero() {
        let rs = ReedSolomon::new(200, 55).unwrap();
        for j in 0..55 {
            for i in 0..200 {
                assert_ne!(rs.coeff(j, i), Gf::ZERO);
            }
        }
    }

    #[test]
    fn cached_coefficient_matrix_matches_formula() {
        let rs = ReedSolomon::new(23, 7).unwrap();
        let coeffs = rs.coeff_matrix();
        assert_eq!(coeffs.len(), 7 * 23);
        for j in 0..7 {
            for i in 0..23 {
                assert_eq!(coeffs[j * 23 + i], rs.coeff(j, i), "j={j} i={i}");
            }
        }
        // Same (k,m) yields the same shared allocation.
        let again = ReedSolomon::new(23, 7).unwrap().coeff_matrix();
        assert!(Arc::ptr_eq(&coeffs, &again));
    }

    #[test]
    fn clean_round_trip() {
        for (k, m) in [(4, 2), (10, 4), (241, 14), (152, 103), (1, 1)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = sample(10_000);
            let enc = rs.encode(&data);
            let (out, report) = rs.decode(&enc, data.len()).unwrap();
            assert_eq!(out, data, "k={k} m={m}");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn corrects_single_bit_flip_anywhere() {
        let rs = ReedSolomon::new(8, 3).unwrap();
        let data = sample(512);
        let enc = rs.encode(&data);
        // Sweep a sample of bit positions across data, parity, and CRC table.
        for bit in (0..(enc.len() as u64 * 8)).step_by(97) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, report) = rs.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "bit {bit}");
            assert!(report.corrected_devices >= 1 || report.is_clean(), "bit {bit}");
        }
    }

    #[test]
    fn corrects_m_whole_device_erasures() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = sample(6 * 100);
        let enc = rs.encode(&data);
        let d = rs.device_size(data.len());
        // Trash devices 0, 3, 5 (all data devices) completely.
        let mut bad = enc.clone();
        for dev in [0usize, 3, 5] {
            for b in &mut bad[dev * d..(dev + 1) * d] {
                *b = !*b;
            }
        }
        let (out, report) = rs.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_devices, 3);
    }

    #[test]
    fn corrects_mixed_data_and_parity_device_loss() {
        let rs = ReedSolomon::new(5, 4).unwrap();
        let data = sample(5 * 64 + 13); // ragged tail
        let enc = rs.encode(&data);
        let d = rs.device_size(data.len());
        let mut bad = enc.clone();
        // Corrupt data devices 1 and 4 (the ragged one) and parity devices 0, 2.
        for b in &mut bad[d..2 * d] {
            *b ^= 0x5A;
        }
        let tail = rs.data_device_range(data.len(), 4);
        let tail_start = tail.start;
        for b in &mut bad[tail_start..data.len()] {
            *b ^= 0xFF;
        }
        let pbase = data.len();
        for j in [0usize, 2] {
            for b in &mut bad[pbase + j * d..pbase + (j + 1) * d] {
                *b ^= 0x33;
            }
        }
        let (out, report) = rs.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_devices, 4);
    }

    #[test]
    fn burst_error_spanning_adjacent_devices() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = sample(10 * 256);
        let enc = rs.encode(&data);
        let d = rs.device_size(data.len());
        let mut bad = enc.clone();
        // 3·d-byte burst straddling devices 2, 3, 4.
        let start = 2 * d + d / 2;
        for b in &mut bad[start..start + 3 * d] {
            *b = 0xEE;
        }
        let (out, _) = rs.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn rejects_more_than_m_corrupt_devices() {
        let rs = ReedSolomon::new(6, 2).unwrap();
        let data = sample(6 * 50);
        let enc = rs.encode(&data);
        let d = rs.device_size(data.len());
        let mut bad = enc.clone();
        for dev in [0usize, 2, 4] {
            bad[dev * d] ^= 0xFF;
        }
        assert!(matches!(rs.decode(&bad, data.len()), Err(EccError::Uncorrectable { .. })));
    }

    #[test]
    fn corrupt_crc_table_is_self_healing() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample(400);
        let enc = rs.encode(&data);
        let d = rs.device_size(data.len());
        let crc_base = (data.len() + 2 * d) as u64 * 8;
        let mut bad = enc.clone();
        flip_bit(&mut bad, crc_base + 5); // corrupt CRC entry of device 0
        let (out, report) = rs.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        // Device 0 looked erased and was "repaired" to identical contents.
        assert_eq!(report.corrected_devices, 1);
    }

    #[test]
    fn short_buffer_fewer_bytes_than_devices() {
        let rs = ReedSolomon::new(16, 4).unwrap();
        let data = sample(5); // d = 1, devices 5..15 empty
        let enc = rs.encode(&data);
        let (out, _) = rs.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        // Corrupt one real byte.
        let mut bad = enc.clone();
        bad[2] ^= 0x40;
        let (out, report) = rs.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_devices, 1);
    }

    #[test]
    fn empty_input() {
        let rs = ReedSolomon::new(8, 4).unwrap();
        let enc = rs.encode(&[]);
        assert!(enc.is_empty());
        assert!(rs.decode(&enc, 0).unwrap().0.is_empty());
    }

    #[test]
    fn overhead_is_m_over_k() {
        let rs = ReedSolomon::new(241, 14).unwrap();
        assert!((rs.storage_overhead() - 14.0 / 241.0).abs() < 1e-12);
    }

    #[test]
    fn capability_includes_burst() {
        let cap = ReedSolomon::new(10, 4).unwrap().capability();
        assert!(cap.corrects_burst && cap.corrects_sparse && cap.detects_sparse);
        assert_eq!(cap.correctable_per_mb, 4.0);
    }

    #[test]
    fn parity_len_accounts_for_crc_table() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let len = rs.parity_len(100);
        assert_eq!(len, 2 * 25 + 6 * 4);
    }

    /// Restores the auto backend even if the test panics, so a failure here
    /// cannot poison concurrently running tests.
    struct BackendGuard;
    impl Drop for BackendGuard {
        fn drop(&mut self) {
            set_rs_backend(RsBackend::Auto);
        }
    }

    #[test]
    fn scheduled_backend_produces_identical_parity() {
        let _guard = BackendGuard;
        for (k, m, len) in [(4usize, 2usize, 4096usize), (10, 4, 3001), (16, 4, 16 * 1024 + 7)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = sample(len);
            set_rs_backend(RsBackend::Table);
            let table = rs.encode_parity(&data);
            set_rs_backend(RsBackend::Scheduled);
            let scheduled = rs.encode_parity(&data);
            assert_eq!(table, scheduled, "k={k} m={m} len={len}");
        }
    }

    #[test]
    fn scheduled_backend_repairs_erasures() {
        let _guard = BackendGuard;
        set_rs_backend(RsBackend::Scheduled);
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = sample(6 * 100 + 31);
        let enc = rs.encode(&data);
        let d = rs.device_size(data.len());
        let mut bad = enc.clone();
        for dev in [0usize, 2, 5] {
            for b in &mut bad[dev * d..((dev + 1) * d).min(data.len())] {
                *b = !*b;
            }
        }
        let (out, report) = rs.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_devices >= 3);
    }
}
