//! Byte-lane interleaving wrapper: burst protection for any inner scheme.
//!
//! [`crate::interleave::InterleavedSecDed`] hard-wires bit interleaving to
//! SEC-DED(72,64). This module generalizes the idea to *any*
//! [`EccScheme`]: the data region is split round-robin into `depth` byte
//! lanes (lane `j` holds bytes `j, j+depth, j+2·depth, …`), the inner
//! scheme encodes each lane independently, and the parity region is the
//! concatenation of the per-lane parities in lane order.
//!
//! A contiguous run of `b ≤ depth` corrupted bytes in the *data region*
//! touches each lane at most once, so a burst that would overwhelm one
//! inner codeword is diluted into `b` single-byte errors in `b` different
//! codewords. Wrapped around [`crate::rsblock::RsBlock`] this turns a
//! `t`-byte-per-codeword code into one that absorbs data bursts of up to
//! `depth · t` bytes — at *identical* parity overhead to the bare inner
//! code. The parity region itself stays lane-contiguous, so a burst there
//! is bounded by the inner per-codeword budget; parity is a small fraction
//! of the stream, which keeps that exposure proportionally small.

use crate::codec::{Capability, CorrectionReport, EccError, EccScheme};

/// Maximum interleave depth (matches `InterleavedSecDed`).
pub const MAX_INTERLEAVE_DEPTH: usize = 4096;

/// Round-robin byte-lane interleaver over an inner [`EccScheme`].
#[derive(Debug, Clone)]
pub struct Interleaved<S: EccScheme> {
    inner: S,
    depth: usize,
}

impl<S: EccScheme> Interleaved<S> {
    /// Wrap `inner` with `depth` byte lanes (2..=4096).
    pub fn new(inner: S, depth: usize) -> Result<Interleaved<S>, EccError> {
        if !(2..=MAX_INTERLEAVE_DEPTH).contains(&depth) {
            return Err(EccError::InvalidConfig(format!(
                "interleaved: depth must be in 2..={MAX_INTERLEAVE_DEPTH}, got {depth}"
            )));
        }
        Ok(Interleaved { inner, depth })
    }

    /// Number of byte lanes.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The wrapped inner scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Length of lane `j` for a data region of `data_len` bytes.
    fn lane_len(&self, data_len: usize, j: usize) -> usize {
        data_len / self.depth + usize::from(j < data_len % self.depth)
    }
}

impl<S: EccScheme> EccScheme for Interleaved<S> {
    fn name(&self) -> &'static str {
        "interleaved"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        (0..self.depth).map(|j| self.inner.parity_len(self.lane_len(data_len, j))).sum()
    }

    fn storage_overhead(&self) -> f64 {
        // Interleaving permutes bytes; it adds no parity of its own.
        self.inner.storage_overhead()
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        let mut lane = Vec::with_capacity(self.lane_len(data.len(), 0));
        let mut off = 0usize;
        for j in 0..self.depth {
            lane.clear();
            lane.extend(data.iter().skip(j).step_by(self.depth));
            let plen = self.inner.parity_len(lane.len());
            // arc-lint: bounded(assert above pins parity.len() to the sum of per-lane plens)
            self.inner.encode_parity_into(&lane, &mut parity[off..off + plen]);
            off += plen;
        }
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "interleaved parity region {} bytes, expected {expected}",
                    parity.len()
                ),
            });
        }
        let mut report = CorrectionReport::default();
        // arc-lint: bounded(lane scratch is at most data_len / depth + 1 bytes)
        let mut lane = Vec::with_capacity(self.lane_len(data.len(), 0));
        let mut rest = &mut *parity;
        for j in 0..self.depth {
            lane.clear();
            lane.extend(data.iter().skip(j).step_by(self.depth));
            let plen = self.inner.parity_len(lane.len());
            if plen > rest.len() {
                return Err(EccError::Malformed {
                    detail: format!("interleaved parity region exhausted at lane {j}"),
                });
            }
            let (pslot, tail) = rest.split_at_mut(plen);
            rest = tail;
            let lane_report = self.inner.verify_and_correct(&mut lane, pslot)?;
            if !lane_report.is_clean() {
                // Scatter repaired lane bytes back into the data region.
                for (dst, src) in data.iter_mut().skip(j).step_by(self.depth).zip(lane.iter()) {
                    *dst = *src;
                }
            }
            report.merge(&lane_report);
        }
        Ok(report)
    }

    fn capability(&self) -> Capability {
        let inner = self.inner.capability();
        Capability {
            detects_sparse: inner.detects_sparse,
            corrects_sparse: inner.corrects_sparse,
            // A burst of ≤ depth bytes lands at most one byte per lane, so
            // any sparse-correcting inner absorbs it.
            corrects_burst: inner.corrects_sparse || inner.corrects_burst,
            correctable_per_mb: inner.correctable_per_mb,
        }
    }

    fn min_bytes_per_thread(&self) -> usize {
        self.inner.min_bytes_per_thread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsblock::RsBlock;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 131) ^ (i >> 5)) as u8).collect()
    }

    fn scheme(depth: usize) -> Interleaved<RsBlock> {
        Interleaved::new(RsBlock::new(32).unwrap(), depth).unwrap()
    }

    #[test]
    fn validates_depth() {
        let inner = RsBlock::new(8).unwrap();
        assert!(Interleaved::new(inner.clone(), 1).is_err());
        assert!(Interleaved::new(inner.clone(), 4097).is_err());
        assert!(Interleaved::new(inner, 2).is_ok());
    }

    #[test]
    fn clean_round_trip_various_sizes() {
        let s = scheme(16);
        for n in [0usize, 1, 15, 16, 17, 223, 1000, 16 * 223, 50_000] {
            let data = sample(n);
            let enc = s.encode(&data);
            assert_eq!(enc.len(), n + s.parity_len(n));
            let (out, report) = s.decode(&enc, n).unwrap();
            assert_eq!(out, data, "n={n}");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn parity_len_matches_bare_inner_totals() {
        // Interleaving must not change the total parity bill when lanes
        // split evenly into whole codewords.
        let inner = RsBlock::new(32).unwrap();
        let s = Interleaved::new(inner.clone(), 8).unwrap();
        let n = 8 * 223 * 4; // every lane is exactly 4 full codewords
        assert_eq!(s.parity_len(n), inner.parity_len(n));
        assert_eq!(s.storage_overhead(), inner.storage_overhead());
    }

    #[test]
    fn absorbs_burst_that_defeats_bare_inner() {
        let inner = RsBlock::new(32).unwrap();
        let s = Interleaved::new(inner.clone(), 64).unwrap();
        let data = sample(64 * 223);
        let enc = s.encode(&data);

        // A 60-byte contiguous burst: bare RsBlock(32) corrects only 16
        // bytes per codeword, so the same damage on its own encoding fails.
        let mut bare = inner.encode(&data);
        for b in &mut bare[100..160] {
            *b ^= 0xFF;
        }
        let bare_result = inner.decode(&bare, data.len());
        assert!(
            bare_result.is_err() || bare_result.is_ok_and(|(out, _)| out != data),
            "bare inner should not survive a 60-byte burst"
        );

        let mut burst = enc.clone();
        for b in &mut burst[100..160] {
            *b ^= 0xFF;
        }
        let (out, report) = s.decode(&burst, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(!report.is_clean());
    }

    #[test]
    fn parity_region_damage_within_inner_budget_is_survivable() {
        // The parity region is lane-contiguous (not interleaved), so a
        // parity burst lands in ONE inner codeword and is bounded by the
        // inner per-codeword budget (t = 16 here) rather than depth·t.
        let s = scheme(32);
        let data = sample(32 * 223);
        let enc = s.encode(&data);
        let mut bad = enc.clone();
        let pstart = data.len();
        for b in &mut bad[pstart + 5..pstart + 15] {
            *b ^= 0x5A;
        }
        let (out, _) = s.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn capability_reports_burst() {
        let cap = scheme(16).capability();
        assert!(cap.corrects_burst && cap.corrects_sparse);
        let inner_cap = RsBlock::new(32).unwrap().capability();
        assert_eq!(cap.correctable_per_mb, inner_cap.correctable_per_mb);
    }

    #[test]
    fn malformed_parity_length_rejected() {
        let s = scheme(4);
        let mut data = sample(100);
        let mut parity = vec![0u8; 3];
        assert!(matches!(
            s.verify_and_correct(&mut data, &mut parity),
            Err(EccError::Malformed { .. })
        ));
    }
}
