//! Arithmetic over the finite field GF(2^8).
//!
//! Reed-Solomon coding (and the generator-matrix construction used by the
//! device-oriented erasure codec) operates on symbols drawn from GF(2^8),
//! the field of 256 elements represented as polynomials over GF(2) modulo
//! the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D). This is the
//! same field used by Jerasure with `w = 8`, CCSDS Reed-Solomon, and QR codes.
//!
//! Multiplication and division are implemented with log/antilog tables built
//! once at first use; addition is XOR. All operations are branch-light and
//! allocation-free, suitable for the hot encode/decode loops.

/// The primitive polynomial used to construct the field, with the implicit
/// x^8 term removed (`x^8 + x^4 + x^3 + x^2 + 1`).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Number of non-zero field elements (the multiplicative group order).
pub const GROUP_ORDER: usize = 255;

/// Precomputed exp/log tables for GF(2^8).
///
/// `exp` is doubled in length so `mul` can skip the `% 255` reduction.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(GROUP_ORDER) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in GROUP_ORDER..512 {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { exp, log }
    })
}

/// A single element of GF(2^8).
///
/// This is a zero-cost newtype over `u8`; all arithmetic is by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf(pub u8);

// Inherent `add`/`sub`/`mul`/`div` are deliberate: field arithmetic stays
// explicit at call sites (`a.mul(b)` over GF, never machine arithmetic) and
// the names shadow the operator traits on purpose.
#[allow(clippy::should_implement_trait)]
impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);
    /// The canonical generator α = 0x02 of the multiplicative group.
    pub const ALPHA: Gf = Gf(2);

    /// Field addition (XOR). Identical to subtraction in GF(2^8).
    #[inline]
    pub fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }

    /// Field subtraction; in characteristic 2 this is the same as addition.
    #[inline]
    pub fn sub(self, rhs: Gf) -> Gf {
        self.add(rhs)
    }

    /// Field multiplication via log/antilog tables.
    #[inline]
    pub fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Field division.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div(self, rhs: Gf) -> Gf {
        assert!(rhs.0 != 0, "division by zero in GF(2^8)");
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + GROUP_ORDER - t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf {
        Gf::ONE.div(self)
    }

    /// Raise to an integer power (exponent taken modulo 255 for non-zero base).
    #[inline]
    pub fn pow(self, mut e: i32) -> Gf {
        if self.0 == 0 {
            return if e == 0 { Gf::ONE } else { Gf::ZERO };
        }
        let t = tables();
        let l = t.log[self.0 as usize] as i64;
        e = e.rem_euclid(GROUP_ORDER as i32);
        let idx = (l * e as i64).rem_euclid(GROUP_ORDER as i64) as usize;
        Gf(t.exp[idx])
    }

    /// α^e — the e-th power of the group generator.
    #[inline]
    pub fn alpha_pow(e: i32) -> Gf {
        Gf::ALPHA.pow(e)
    }

    /// Discrete logarithm base α.
    ///
    /// # Panics
    /// Panics if `self` is zero (zero has no logarithm).
    #[inline]
    pub fn log(self) -> u8 {
        assert!(self.0 != 0, "log of zero in GF(2^8)");
        tables().log[self.0 as usize]
    }
}

/// Multiply a slice of symbols by a scalar in place.
#[inline]
pub fn scale_slice(dst: &mut [u8], c: Gf) {
    if c == Gf::ONE {
        return;
    }
    if c == Gf::ZERO {
        dst.fill(0);
        return;
    }
    let t = tables();
    let lc = t.log[c.0 as usize] as usize;
    for b in dst.iter_mut() {
        if *b != 0 {
            *b = t.exp[t.log[*b as usize] as usize + lc];
        }
    }
}

/// `dst[i] ^= c * src[i]` for all i — the core kernel of the device-oriented
/// Reed-Solomon encoder. `dst` and `src` must have equal length.
#[inline]
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: Gf) {
    debug_assert_eq!(dst.len(), src.len());
    if c == Gf::ZERO {
        return;
    }
    if c == Gf::ONE {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let lc = t.log[c.0 as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[t.log[*s as usize] as usize + lc];
        }
    }
}

/// Polynomials over GF(2^8), stored lowest-degree coefficient first.
///
/// Used by the Reed-Solomon codeword encoder/decoder (generator polynomial,
/// syndromes, error locator, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    /// Coefficients, index = degree. Highest coefficient is non-zero unless
    /// the polynomial is zero (empty or all-zero is permitted transiently).
    pub coeffs: Vec<Gf>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf) -> Poly {
        Poly { coeffs: vec![c] }
    }

    /// Construct from coefficients (lowest degree first), trimming zeros.
    pub fn from_coeffs(coeffs: Vec<Gf>) -> Poly {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// Degree of the polynomial; 0 for constants and the zero polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// True when every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|c| c.0 == 0)
    }

    fn trim(&mut self) {
        while matches!(self.coeffs.last(), Some(c) if c.0 == 0) {
            self.coeffs.pop();
        }
    }

    /// Coefficient of x^i (zero beyond the stored length).
    #[inline]
    pub fn coeff(&self, i: usize) -> Gf {
        self.coeffs.get(i).copied().unwrap_or(Gf::ZERO)
    }

    /// Polynomial addition.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i).add(rhs.coeff(i)));
        }
        Poly::from_coeffs(out)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Gf::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.0 == 0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] = out[i + j].add(a.mul(b));
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiply by the scalar `c`.
    pub fn scale(&self, c: Gf) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&a| a.mul(c)).collect())
    }

    /// Multiply by x^k (shift coefficients up).
    pub fn shift(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Gf::ZERO; k];
        out.extend_from_slice(&self.coeffs);
        Poly::from_coeffs(out)
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, x: Gf) -> Gf {
        let mut acc = Gf::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc
    }

    /// Formal derivative; in characteristic 2, even-degree terms vanish.
    pub fn derivative(&self) -> Poly {
        let mut out = Vec::with_capacity(self.coeffs.len().saturating_sub(1));
        for i in 1..self.coeffs.len() {
            if i % 2 == 1 {
                out.push(self.coeffs[i]);
            } else {
                out.push(Gf::ZERO);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Remainder of `self` divided by `rhs`.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn rem(&self, rhs: &Poly) -> Poly {
        assert!(!rhs.is_zero(), "polynomial division by zero");
        let mut r = self.clone();
        r.trim();
        let d = rhs.coeffs.len() - 1;
        let lead_inv = rhs.coeffs[d].inv();
        while !r.is_zero() && r.coeffs.len() > d {
            let shift = r.coeffs.len() - 1 - d;
            let c = r.coeffs.last().copied().unwrap().mul(lead_inv);
            for i in 0..=d {
                let idx = shift + i;
                r.coeffs[idx] = r.coeffs[idx].add(rhs.coeffs[i].mul(c));
            }
            r.trim();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf(0x53).add(Gf(0xCA)), Gf(0x53 ^ 0xCA));
        assert_eq!(Gf(7).add(Gf(7)), Gf::ZERO);
    }

    #[test]
    fn mul_identities() {
        for v in 0..=255u8 {
            assert_eq!(Gf(v).mul(Gf::ONE), Gf(v));
            assert_eq!(Gf(v).mul(Gf::ZERO), Gf::ZERO);
        }
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Reference: carry-less multiply then reduce mod 0x11D.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            let mut a16 = a as u16;
            let mut b16 = b as u16;
            while b16 != 0 {
                if b16 & 1 != 0 {
                    acc ^= a16;
                }
                b16 >>= 1;
                a16 <<= 1;
                if a16 & 0x100 != 0 {
                    a16 ^= PRIMITIVE_POLY;
                }
            }
            acc as u8
        }
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(5) {
                assert_eq!(Gf(a).mul(Gf(b)).0, slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            assert_eq!(Gf(v).mul(Gf(v).inv()), Gf::ONE, "v={v}");
        }
    }

    #[test]
    fn division_round_trips() {
        for a in 1..=255u8 {
            for b in (1..=255u8).step_by(11) {
                let q = Gf(a).div(Gf(b));
                assert_eq!(q.mul(Gf(b)), Gf(a));
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Gf(0x1D);
        let mut acc = Gf::ONE;
        for e in 0..300 {
            assert_eq!(g.pow(e), acc, "e={e}");
            acc = acc.mul(g);
        }
    }

    #[test]
    fn alpha_generates_group() {
        let mut seen = [false; 256];
        for e in 0..GROUP_ORDER as i32 {
            let v = Gf::alpha_pow(e);
            assert!(!seen[v.0 as usize], "alpha^{e} repeated");
            seen[v.0 as usize] = true;
        }
        assert!(!seen[0], "alpha powers never hit zero");
    }

    #[test]
    fn mul_acc_kernel_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, Gf(c));
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= Gf(*s).mul(Gf(c)).0;
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn scale_slice_matches_mul() {
        let mut v: Vec<u8> = (0..=255).collect();
        scale_slice(&mut v, Gf(0x53));
        for (i, &b) in v.iter().enumerate() {
            assert_eq!(Gf(b), Gf(i as u8).mul(Gf(0x53)));
        }
    }

    #[test]
    fn poly_mul_and_eval_consistent() {
        // (x + 1)(x + 2) evaluated at x must equal product of factors.
        let p1 = Poly::from_coeffs(vec![Gf(1), Gf(1)]);
        let p2 = Poly::from_coeffs(vec![Gf(2), Gf(1)]);
        let prod = p1.mul(&p2);
        for x in 0..=255u8 {
            let x = Gf(x);
            assert_eq!(prod.eval(x), p1.eval(x).mul(p2.eval(x)));
        }
    }

    #[test]
    fn poly_rem_has_lower_degree() {
        let num = Poly::from_coeffs((1..=10).map(Gf).collect());
        let den = Poly::from_coeffs(vec![Gf(3), Gf(0), Gf(1)]);
        let r = num.rem(&den);
        assert!(r.is_zero() || r.degree() < den.degree());
    }

    #[test]
    fn poly_derivative_characteristic_two() {
        // d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        let p = Poly::from_coeffs(vec![Gf(9), Gf(7), Gf(5), Gf(3)]);
        let d = p.derivative();
        assert_eq!(d.coeff(0), Gf(7));
        assert_eq!(d.coeff(1), Gf::ZERO);
        assert_eq!(d.coeff(2), Gf(3));
    }
}
