//! Arithmetic over the finite field GF(2^8).
//!
//! Reed-Solomon coding (and the generator-matrix construction used by the
//! device-oriented erasure codec) operates on symbols drawn from GF(2^8),
//! the field of 256 elements represented as polynomials over GF(2) modulo
//! the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11D). This is the
//! same field used by Jerasure with `w = 8`, CCSDS Reed-Solomon, and QR codes.
//!
//! Multiplication and division are implemented with log/antilog tables built
//! once at first use; addition is XOR. All operations are branch-light and
//! allocation-free, suitable for the hot encode/decode loops.

/// The primitive polynomial used to construct the field, with the implicit
/// x^8 term removed (`x^8 + x^4 + x^3 + x^2 + 1`).
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// Number of non-zero field elements (the multiplicative group order).
pub const GROUP_ORDER: usize = 255;

/// Precomputed exp/log tables for GF(2^8).
///
/// `exp` is doubled in length so `mul` can skip the `% 255` reduction.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

static TABLES: std::sync::OnceLock<Tables> = std::sync::OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(GROUP_ORDER) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in GROUP_ORDER..512 {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { exp, log }
    })
}

/// A single element of GF(2^8).
///
/// This is a zero-cost newtype over `u8`; all arithmetic is by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf(pub u8);

// Inherent `add`/`sub`/`mul`/`div` are deliberate: field arithmetic stays
// explicit at call sites (`a.mul(b)` over GF, never machine arithmetic) and
// the names shadow the operator traits on purpose.
#[allow(clippy::should_implement_trait)]
impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);
    /// The canonical generator α = 0x02 of the multiplicative group.
    pub const ALPHA: Gf = Gf(2);

    /// Field addition (XOR). Identical to subtraction in GF(2^8).
    #[inline]
    pub fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }

    /// Field subtraction; in characteristic 2 this is the same as addition.
    #[inline]
    pub fn sub(self, rhs: Gf) -> Gf {
        self.add(rhs)
    }

    /// Field multiplication via log/antilog tables.
    #[inline]
    pub fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Field division.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div(self, rhs: Gf) -> Gf {
        assert!(rhs.0 != 0, "division by zero in GF(2^8)");
        if self.0 == 0 {
            return Gf::ZERO;
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + GROUP_ORDER - t.log[rhs.0 as usize] as usize;
        Gf(t.exp[idx])
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    #[inline]
    pub fn inv(self) -> Gf {
        Gf::ONE.div(self)
    }

    /// Raise to an integer power (exponent taken modulo 255 for non-zero base).
    #[inline]
    pub fn pow(self, mut e: i32) -> Gf {
        if self.0 == 0 {
            return if e == 0 { Gf::ONE } else { Gf::ZERO };
        }
        let t = tables();
        let l = t.log[self.0 as usize] as i64;
        e = e.rem_euclid(GROUP_ORDER as i32);
        let idx = (l * e as i64).rem_euclid(GROUP_ORDER as i64) as usize;
        Gf(t.exp[idx])
    }

    /// α^e — the e-th power of the group generator.
    #[inline]
    pub fn alpha_pow(e: i32) -> Gf {
        Gf::ALPHA.pow(e)
    }

    /// Discrete logarithm base α.
    ///
    /// # Panics
    /// Panics if `self` is zero (zero has no logarithm).
    #[inline]
    pub fn log(self) -> u8 {
        assert!(self.0 != 0, "log of zero in GF(2^8)");
        tables().log[self.0 as usize]
    }
}

/// Split-nibble multiplication tables for every coefficient, plus the
/// composed full row tables.
///
/// For a coefficient `c`, `lo[c][n] = c·n` and `hi[c][n] = c·(n << 4)`; by
/// linearity `c·b = lo[c][b & 15] ⊕ hi[c][b >> 4]`, so the two 16-entry
/// tables compose into the branch-free 256-entry row `row[c]`. The 16-entry
/// tables are exactly the shape a byte-shuffle instruction (PSHUFB) consumes,
/// which is how the Jerasure-class word-wide kernels get their throughput;
/// the composed rows serve the portable scalar/u64 path and `Gf`-level code.
struct MulTables {
    /// `lo[c][n] = c·n` for n in 0..16.
    lo: Vec<[u8; 16]>,
    /// `hi[c][n] = c·(n << 4)` for n in 0..16.
    hi: Vec<[u8; 16]>,
    /// `row[c][b] = c·b`, composed from `lo`/`hi`.
    row: Vec<[u8; 256]>,
}

static MUL_TABLES: std::sync::OnceLock<MulTables> = std::sync::OnceLock::new();

fn mul_tables() -> &'static MulTables {
    MUL_TABLES.get_or_init(|| {
        let t = tables();
        // Multiply through log/exp directly; `Gf::mul` stays independent of
        // this builder.
        let mul = |a: u8, b: u8| -> u8 {
            if a == 0 || b == 0 {
                0
            } else {
                t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
            }
        };
        let mut lo = vec![[0u8; 16]; 256];
        let mut hi = vec![[0u8; 16]; 256];
        let mut row = vec![[0u8; 256]; 256];
        for c in 0..256 {
            for n in 0..16 {
                lo[c][n] = mul(c as u8, n as u8);
                hi[c][n] = mul(c as u8, (n << 4) as u8);
            }
            for b in 0..256 {
                row[c][b] = lo[c][b & 0xF] ^ hi[c][b >> 4];
            }
        }
        MulTables { lo, hi, row }
    })
}

/// Force-build every lazily-initialized lookup table: log/exp, the
/// split-nibble multiply tables, the GFNI affine-matrix operands, and the
/// slice-by-16 CRC-32 tables.
///
/// Hot paths touch the tables through `OnceLock`s; calling this once up
/// front (e.g. when a [`crate::parallel::ParallelCodec`] is constructed)
/// keeps the one-time build out of the timed/parallel region and off the
/// allocation budget of steady-state encode/decode. Compiled XOR schedules
/// are *not* warmed here — they are per-(k, m) and compile lazily on the
/// first encode that selects the scheduled backend.
pub fn warm_tables() {
    let _ = mul_tables();
    let _ = crate::bitmatrix::gfni_matrices();
    crate::crc::warm_crc_tables();
    #[cfg(target_arch = "x86_64")]
    let _ = simd_level();
}

/// The 256-entry multiplication row for coefficient `c`: `row[b] = c·b`.
#[inline]
pub(crate) fn row_table(c: Gf) -> &'static [u8; 256] {
    &mul_tables().row[c.0 as usize]
}

/// Which SIMD kernel the slice operations dispatch to, resolved once.
///
/// The two GFNI tiers use `GF2P8AFFINEQB`, which applies the coefficient's
/// 8×8 bitmatrix ([`crate::bitmatrix::gfni_matrix`]) to every byte of a
/// vector in a single instruction — one op per 64/32 bytes versus the four
/// shuffle/xor ops of the PSHUFB split-nibble kernel.
#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq, Eq)]
enum SimdLevel {
    Gfni512,
    Gfni256,
    Avx2,
    Ssse3,
    None,
}

#[cfg(target_arch = "x86_64")]
fn simd_level() -> SimdLevel {
    static LEVEL: std::sync::OnceLock<SimdLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        let gfni = is_x86_feature_detected!("gfni");
        if gfni
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vl")
        {
            SimdLevel::Gfni512
        } else if gfni && is_x86_feature_detected!("avx2") {
            SimdLevel::Gfni256
        } else if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else if is_x86_feature_detected!("ssse3") {
            SimdLevel::Ssse3
        } else {
            SimdLevel::None
        }
    })
}

/// True when any SIMD multiply kernel (GFNI or PSHUFB-class) is available.
/// Without one, the scheduled-XOR program is the faster RS encode backend.
pub(crate) fn has_simd() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd_level() != SimdLevel::None
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Little-endian u64 load from a `chunks_exact(8)` chunk. The clamped copy
/// keeps the conversion infallible — no abort path even if a caller ever
/// hands a short slice.
#[inline]
fn le_word(b: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    let n = b.len().min(8);
    w[..n].copy_from_slice(&b[..n]);
    u64::from_le_bytes(w)
}

/// `dst[i] ^= src[i]` — the c = 1 case, folded over u64 lanes. Also the
/// inner kernel of the scheduled-XOR executor in [`crate::schedule`].
#[inline]
pub(crate) fn xor_slice(dst: &mut [u8], src: &[u8]) {
    let mut d8 = dst.chunks_exact_mut(8);
    let mut s8 = src.chunks_exact(8);
    for (d, s) in (&mut d8).zip(&mut s8) {
        let v = le_word(d) ^ le_word(s);
        d.copy_from_slice(&v.to_le_bytes());
    }
    for (d, s) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d ^= s;
    }
}

/// Portable `dst ^= c·src` over 8-byte words: one unaligned u64 load per
/// side, eight branch-free row lookups, one u64 xor/store. The scalar tail
/// is branch-free too.
#[inline]
fn mul_acc_words(dst: &mut [u8], src: &[u8], row: &[u8; 256]) {
    let mut d8 = dst.chunks_exact_mut(8);
    let mut s8 = src.chunks_exact(8);
    for (d, s) in (&mut d8).zip(&mut s8) {
        let sw = le_word(s);
        let mut p = 0u64;
        for k in 0..8 {
            p |= (row[((sw >> (8 * k)) & 0xFF) as usize] as u64) << (8 * k);
        }
        let v = le_word(d) ^ p;
        d.copy_from_slice(&v.to_le_bytes());
    }
    for (d, s) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d ^= row[*s as usize];
    }
}

/// Portable `dst = c·dst` over 8-byte words.
#[inline]
fn scale_words(dst: &mut [u8], row: &[u8; 256]) {
    let mut d8 = dst.chunks_exact_mut(8);
    for d in &mut d8 {
        let sw = le_word(d);
        let mut p = 0u64;
        for k in 0..8 {
            p |= (row[((sw >> (8 * k)) & 0xFF) as usize] as u64) << (8 * k);
        }
        d.copy_from_slice(&p.to_le_bytes());
    }
    for d in d8.into_remainder() {
        *d = row[*d as usize];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! PSHUFB split-nibble kernels. Each 16/32-byte lane is multiplied by a
    //! constant with two byte shuffles of the coefficient's 16-entry nibble
    //! tables — the classic Jerasure/ISA-L technique.

    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use super::{mul_acc_words, mul_tables, row_table, scale_words, Gf};
    use crate::bitmatrix::gfni_matrices;

    /// # Safety
    /// Caller must ensure GFNI + AVX-512F/BW are available.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    pub(super) unsafe fn mul_acc_gfni512(dst: &mut [u8], src: &[u8], c: Gf) {
        let mat = gfni_matrices()[c.0 as usize];
        // SAFETY: unaligned loads/stores stay within `dst`/`src` because the
        // loop bound n is their length rounded down to a whole 64-byte lane.
        unsafe {
            let m = _mm512_set1_epi64(mat as i64);
            let n = dst.len() & !63;
            let mut i = 0;
            while i < n {
                let s = _mm512_loadu_si512(src.as_ptr().add(i) as *const __m512i);
                let prod = _mm512_gf2p8affine_epi64_epi8::<0>(s, m);
                let d = _mm512_loadu_si512(dst.as_ptr().add(i) as *const __m512i);
                _mm512_storeu_si512(
                    dst.as_mut_ptr().add(i) as *mut __m512i,
                    _mm512_xor_si512(d, prod),
                );
                i += 64;
            }
            mul_acc_words(&mut dst[n..], &src[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure GFNI + AVX2 are available.
    #[target_feature(enable = "gfni,avx2")]
    pub(super) unsafe fn mul_acc_gfni256(dst: &mut [u8], src: &[u8], c: Gf) {
        let mat = gfni_matrices()[c.0 as usize];
        // SAFETY: unaligned loads/stores stay within `dst`/`src` because the
        // loop bound n is their length rounded down to a whole 32-byte lane.
        unsafe {
            let m = _mm256_set1_epi64x(mat as i64);
            let n = dst.len() & !31;
            let mut i = 0;
            while i < n {
                let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                let prod = _mm256_gf2p8affine_epi64_epi8::<0>(s, m);
                let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
                _mm256_storeu_si256(
                    dst.as_mut_ptr().add(i) as *mut __m256i,
                    _mm256_xor_si256(d, prod),
                );
                i += 32;
            }
            mul_acc_words(&mut dst[n..], &src[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure GFNI + AVX-512F/BW are available.
    #[target_feature(enable = "gfni,avx512f,avx512bw")]
    pub(super) unsafe fn scale_gfni512(dst: &mut [u8], c: Gf) {
        let mat = gfni_matrices()[c.0 as usize];
        // SAFETY: unaligned loads/stores stay within `dst` because the loop
        // bound n is its length rounded down to a whole 64-byte lane.
        unsafe {
            let m = _mm512_set1_epi64(mat as i64);
            let n = dst.len() & !63;
            let mut i = 0;
            while i < n {
                let s = _mm512_loadu_si512(dst.as_ptr().add(i) as *const __m512i);
                let prod = _mm512_gf2p8affine_epi64_epi8::<0>(s, m);
                _mm512_storeu_si512(dst.as_mut_ptr().add(i) as *mut __m512i, prod);
                i += 64;
            }
            scale_words(&mut dst[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure GFNI + AVX2 are available.
    #[target_feature(enable = "gfni,avx2")]
    pub(super) unsafe fn scale_gfni256(dst: &mut [u8], c: Gf) {
        let mat = gfni_matrices()[c.0 as usize];
        // SAFETY: unaligned loads/stores stay within `dst` because the loop
        // bound n is its length rounded down to a whole 32-byte lane.
        unsafe {
            let m = _mm256_set1_epi64x(mat as i64);
            let n = dst.len() & !31;
            let mut i = 0;
            while i < n {
                let s = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
                let prod = _mm256_gf2p8affine_epi64_epi8::<0>(s, m);
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, prod);
                i += 32;
            }
            scale_words(&mut dst[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], c: Gf) {
        let t = mul_tables();
        // SAFETY: the 16-byte nibble tables are loaded unaligned and
        // broadcast to both 128-bit lanes.
        unsafe {
            let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.lo[c.0 as usize].as_ptr() as *const __m128i
            ));
            let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.hi[c.0 as usize].as_ptr() as *const __m128i
            ));
            let mask = _mm256_set1_epi8(0x0F);
            let n = dst.len() & !31;
            let mut i = 0;
            while i < n {
                let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
                let sl = _mm256_and_si256(s, mask);
                let sh = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
                let prod =
                    _mm256_xor_si256(_mm256_shuffle_epi8(lo, sl), _mm256_shuffle_epi8(hi, sh));
                let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
                _mm256_storeu_si256(
                    dst.as_mut_ptr().add(i) as *mut __m256i,
                    _mm256_xor_si256(d, prod),
                );
                i += 32;
            }
            mul_acc_words(&mut dst[n..], &src[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], c: Gf) {
        let t = mul_tables();
        // SAFETY: unaligned loads/stores stay within `dst`/`src` because the
        // loop bound n is their length rounded down to a whole 16-byte lane.
        unsafe {
            let lo = _mm_loadu_si128(t.lo[c.0 as usize].as_ptr() as *const __m128i);
            let hi = _mm_loadu_si128(t.hi[c.0 as usize].as_ptr() as *const __m128i);
            let mask = _mm_set1_epi8(0x0F);
            let n = dst.len() & !15;
            let mut i = 0;
            while i < n {
                let s = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
                let sl = _mm_and_si128(s, mask);
                let sh = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
                let prod = _mm_xor_si128(_mm_shuffle_epi8(lo, sl), _mm_shuffle_epi8(hi, sh));
                let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
                _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, prod));
                i += 16;
            }
            mul_acc_words(&mut dst[n..], &src[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_avx2(dst: &mut [u8], c: Gf) {
        let t = mul_tables();
        // SAFETY: unaligned loads/stores stay within `dst` because the loop
        // bound n is its length rounded down to a whole 32-byte lane.
        unsafe {
            let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.lo[c.0 as usize].as_ptr() as *const __m128i
            ));
            let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                t.hi[c.0 as usize].as_ptr() as *const __m128i
            ));
            let mask = _mm256_set1_epi8(0x0F);
            let n = dst.len() & !31;
            let mut i = 0;
            while i < n {
                let s = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
                let sl = _mm256_and_si256(s, mask);
                let sh = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
                let prod =
                    _mm256_xor_si256(_mm256_shuffle_epi8(lo, sl), _mm256_shuffle_epi8(hi, sh));
                _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, prod);
                i += 32;
            }
            scale_words(&mut dst[n..], row_table(c));
        }
    }

    /// # Safety
    /// Caller must ensure SSSE3 is available.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn scale_ssse3(dst: &mut [u8], c: Gf) {
        let t = mul_tables();
        // SAFETY: unaligned loads/stores stay within `dst` because the loop
        // bound n is its length rounded down to a whole 16-byte lane.
        unsafe {
            let lo = _mm_loadu_si128(t.lo[c.0 as usize].as_ptr() as *const __m128i);
            let hi = _mm_loadu_si128(t.hi[c.0 as usize].as_ptr() as *const __m128i);
            let mask = _mm_set1_epi8(0x0F);
            let n = dst.len() & !15;
            let mut i = 0;
            while i < n {
                let s = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
                let sl = _mm_and_si128(s, mask);
                let sh = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
                let prod = _mm_xor_si128(_mm_shuffle_epi8(lo, sl), _mm_shuffle_epi8(hi, sh));
                _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, prod);
                i += 16;
            }
            scale_words(&mut dst[n..], row_table(c));
        }
    }
}

/// Multiply a slice of symbols by a scalar in place.
#[inline]
pub fn scale_slice(dst: &mut [u8], c: Gf) {
    if c == Gf::ONE {
        return;
    }
    if c == Gf::ZERO {
        dst.fill(0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        // SAFETY: the features were detected at runtime.
        SimdLevel::Gfni512 => return unsafe { x86::scale_gfni512(dst, c) },
        // SAFETY: the features were detected at runtime.
        SimdLevel::Gfni256 => return unsafe { x86::scale_gfni256(dst, c) },
        // SAFETY: the feature was detected at runtime.
        SimdLevel::Avx2 => return unsafe { x86::scale_avx2(dst, c) },
        // SAFETY: the feature was detected at runtime.
        SimdLevel::Ssse3 => return unsafe { x86::scale_ssse3(dst, c) },
        SimdLevel::None => {}
    }
    scale_words(dst, row_table(c));
}

/// `dst[i] ^= c * src[i]` for all i — the core kernel of the device-oriented
/// Reed-Solomon encoder. `dst` and `src` must have equal length.
#[inline]
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: Gf) {
    debug_assert_eq!(dst.len(), src.len());
    if c == Gf::ZERO {
        return;
    }
    if c == Gf::ONE {
        xor_slice(dst, src);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    match simd_level() {
        // SAFETY: the features were detected at runtime.
        SimdLevel::Gfni512 => return unsafe { x86::mul_acc_gfni512(dst, src, c) },
        // SAFETY: the features were detected at runtime.
        SimdLevel::Gfni256 => return unsafe { x86::mul_acc_gfni256(dst, src, c) },
        // SAFETY: the feature was detected at runtime.
        SimdLevel::Avx2 => return unsafe { x86::mul_acc_avx2(dst, src, c) },
        // SAFETY: the feature was detected at runtime.
        SimdLevel::Ssse3 => return unsafe { x86::mul_acc_ssse3(dst, src, c) },
        SimdLevel::None => {}
    }
    mul_acc_words(dst, src, row_table(c));
}

/// Polynomials over GF(2^8), stored lowest-degree coefficient first.
///
/// Used by the Reed-Solomon codeword encoder/decoder (generator polynomial,
/// syndromes, error locator, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    /// Coefficients, index = degree. Highest coefficient is non-zero unless
    /// the polynomial is zero (empty or all-zero is permitted transiently).
    pub coeffs: Vec<Gf>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { coeffs: vec![] }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf) -> Poly {
        Poly { coeffs: vec![c] }
    }

    /// Construct from coefficients (lowest degree first), trimming zeros.
    pub fn from_coeffs(coeffs: Vec<Gf>) -> Poly {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// Degree of the polynomial; 0 for constants and the zero polynomial.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// True when every coefficient is zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|c| c.0 == 0)
    }

    fn trim(&mut self) {
        while matches!(self.coeffs.last(), Some(c) if c.0 == 0) {
            self.coeffs.pop();
        }
    }

    /// Coefficient of x^i (zero beyond the stored length).
    #[inline]
    pub fn coeff(&self, i: usize) -> Gf {
        self.coeffs.get(i).copied().unwrap_or(Gf::ZERO)
    }

    /// Polynomial addition.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        // arc-lint: bounded(RS polynomials over GF(256) have degree <= 255)
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.coeff(i).add(rhs.coeff(i)));
        }
        Poly::from_coeffs(out)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    pub fn mul(&self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Gf::ZERO; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.0 == 0 {
                continue;
            }
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                out[i + j] = out[i + j].add(a.mul(b));
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiply by the scalar `c`.
    pub fn scale(&self, c: Gf) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&a| a.mul(c)).collect())
    }

    /// Multiply by x^k (shift coefficients up).
    pub fn shift(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        // arc-lint: bounded(RS shift distance is bounded by the codeword degree <= 255)
        let mut out = vec![Gf::ZERO; k];
        out.extend_from_slice(&self.coeffs);
        Poly::from_coeffs(out)
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, x: Gf) -> Gf {
        let mut acc = Gf::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul(x).add(c);
        }
        acc
    }

    /// Formal derivative; in characteristic 2, even-degree terms vanish.
    pub fn derivative(&self) -> Poly {
        let mut out = Vec::with_capacity(self.coeffs.len().saturating_sub(1));
        for i in 1..self.coeffs.len() {
            if i % 2 == 1 {
                out.push(self.coeffs[i]);
            } else {
                out.push(Gf::ZERO);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Remainder of `self` divided by `rhs`.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn rem(&self, rhs: &Poly) -> Poly {
        assert!(!rhs.is_zero(), "polynomial division by zero");
        let mut r = self.clone();
        r.trim();
        let d = rhs.coeffs.len() - 1;
        let lead_inv = rhs.coeffs[d].inv();
        while !r.is_zero() && r.coeffs.len() > d {
            let shift = r.coeffs.len() - 1 - d;
            let Some(&lead) = r.coeffs.last() else { break };
            let c = lead.mul(lead_inv);
            for i in 0..=d {
                let idx = shift + i;
                r.coeffs[idx] = r.coeffs[idx].add(rhs.coeffs[i].mul(c));
            }
            r.trim();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(Gf(0x53).add(Gf(0xCA)), Gf(0x53 ^ 0xCA));
        assert_eq!(Gf(7).add(Gf(7)), Gf::ZERO);
    }

    #[test]
    fn mul_identities() {
        for v in 0..=255u8 {
            assert_eq!(Gf(v).mul(Gf::ONE), Gf(v));
            assert_eq!(Gf(v).mul(Gf::ZERO), Gf::ZERO);
        }
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Reference: carry-less multiply then reduce mod 0x11D.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            let mut a16 = a as u16;
            let mut b16 = b as u16;
            while b16 != 0 {
                if b16 & 1 != 0 {
                    acc ^= a16;
                }
                b16 >>= 1;
                a16 <<= 1;
                if a16 & 0x100 != 0 {
                    a16 ^= PRIMITIVE_POLY;
                }
            }
            acc as u8
        }
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(5) {
                assert_eq!(Gf(a).mul(Gf(b)).0, slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for v in 1..=255u8 {
            assert_eq!(Gf(v).mul(Gf(v).inv()), Gf::ONE, "v={v}");
        }
    }

    #[test]
    fn division_round_trips() {
        for a in 1..=255u8 {
            for b in (1..=255u8).step_by(11) {
                let q = Gf(a).div(Gf(b));
                assert_eq!(q.mul(Gf(b)), Gf(a));
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Gf(0x1D);
        let mut acc = Gf::ONE;
        for e in 0..300 {
            assert_eq!(g.pow(e), acc, "e={e}");
            acc = acc.mul(g);
        }
    }

    #[test]
    fn alpha_generates_group() {
        let mut seen = [false; 256];
        for e in 0..GROUP_ORDER as i32 {
            let v = Gf::alpha_pow(e);
            assert!(!seen[v.0 as usize], "alpha^{e} repeated");
            seen[v.0 as usize] = true;
        }
        assert!(!seen[0], "alpha powers never hit zero");
    }

    #[test]
    fn mul_acc_kernel_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xA5u8; 256];
            let mut expect = dst.clone();
            mul_acc_slice(&mut dst, &src, Gf(c));
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= Gf(*s).mul(Gf(c)).0;
            }
            assert_eq!(dst, expect, "c={c}");
        }
    }

    #[test]
    fn scale_slice_matches_mul() {
        let mut v: Vec<u8> = (0..=255).collect();
        scale_slice(&mut v, Gf(0x53));
        for (i, &b) in v.iter().enumerate() {
            assert_eq!(Gf(b), Gf(i as u8).mul(Gf(0x53)));
        }
    }

    #[test]
    fn split_nibble_tables_compose_to_products() {
        let t = mul_tables();
        for c in 0..=255u8 {
            for b in 0..=255u8 {
                let composed =
                    t.lo[c as usize][(b & 0xF) as usize] ^ t.hi[c as usize][(b >> 4) as usize];
                assert_eq!(composed, Gf(c).mul(Gf(b)).0, "c={c} b={b}");
                assert_eq!(t.row[c as usize][b as usize], composed, "c={c} b={b}");
            }
        }
    }

    /// Ragged lengths exercising the word kernel's main loop, word tail, and
    /// byte tail, plus the SIMD kernels' 16/32-byte boundaries.
    const KERNEL_LENS: [usize; 12] = [0, 1, 7, 8, 9, 15, 16, 31, 33, 63, 64, 65];

    #[test]
    fn mul_acc_slice_matches_naive_for_every_coefficient_and_ragged_len() {
        for c in 0..=255u8 {
            for len in KERNEL_LENS {
                let src: Vec<u8> =
                    (0..len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(c)).collect();
                let mut dst: Vec<u8> =
                    (0..len).map(|i| (i as u8).wrapping_mul(91) ^ 0xA5).collect();
                let mut expect = dst.clone();
                for (e, &s) in expect.iter_mut().zip(&src) {
                    *e ^= Gf(s).mul(Gf(c)).0;
                }
                mul_acc_slice(&mut dst, &src, Gf(c));
                assert_eq!(dst, expect, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn scale_slice_matches_naive_for_every_coefficient_and_ragged_len() {
        for c in 0..=255u8 {
            for len in KERNEL_LENS {
                let mut dst: Vec<u8> =
                    (0..len).map(|i| (i as u8).wrapping_mul(53).wrapping_add(1)).collect();
                let expect: Vec<u8> = dst.iter().map(|&b| Gf(b).mul(Gf(c)).0).collect();
                scale_slice(&mut dst, Gf(c));
                assert_eq!(dst, expect, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn kernels_handle_unaligned_slices() {
        // Offsets into a larger buffer so the u64/SIMD loads are genuinely
        // unaligned; surrounding bytes must be untouched.
        let base: Vec<u8> = (0..256).map(|i| (i as u8).wrapping_mul(113)).collect();
        for offset in 1..8usize {
            for c in [2u8, 0x1D, 0x8E, 0xFF] {
                let mut buf = base.clone();
                let src = base[offset + 100..offset + 197].to_vec();
                let mut expect = buf.clone();
                for (e, &s) in expect[offset..offset + 97].iter_mut().zip(&src) {
                    *e ^= Gf(s).mul(Gf(c)).0;
                }
                mul_acc_slice(&mut buf[offset..offset + 97], &src, Gf(c));
                assert_eq!(buf, expect, "offset={offset} c={c}");
            }
        }
    }

    #[test]
    fn poly_mul_and_eval_consistent() {
        // (x + 1)(x + 2) evaluated at x must equal product of factors.
        let p1 = Poly::from_coeffs(vec![Gf(1), Gf(1)]);
        let p2 = Poly::from_coeffs(vec![Gf(2), Gf(1)]);
        let prod = p1.mul(&p2);
        for x in 0..=255u8 {
            let x = Gf(x);
            assert_eq!(prod.eval(x), p1.eval(x).mul(p2.eval(x)));
        }
    }

    #[test]
    fn poly_rem_has_lower_degree() {
        let num = Poly::from_coeffs((1..=10).map(Gf).collect());
        let den = Poly::from_coeffs(vec![Gf(3), Gf(0), Gf(1)]);
        let r = num.rem(&den);
        assert!(r.is_zero() || r.degree() < den.degree());
    }

    #[test]
    fn poly_derivative_characteristic_two() {
        // d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
        let p = Poly::from_coeffs(vec![Gf(9), Gf(7), Gf(5), Gf(3)]);
        let d = p.derivative();
        assert_eq!(d.coeff(0), Gf(7));
        assert_eq!(d.coeff(1), Gf::ZERO);
        assert_eq!(d.coeff(2), Gf(3));
    }
}
