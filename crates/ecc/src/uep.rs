//! Unequal error protection: a strong head code, a light tail code.
//!
//! ARC's fault study (§4.1.1 of the paper) shows corruption consequence is
//! wildly position-dependent in lossy-compressed streams: a flip inside an
//! SZ Huffman table or a ZFP block header destroys the whole decode, while
//! a flip in a bit-plane tail costs bounded point error. Uniform codes pay
//! the worst-case rate everywhere; [`Uep`] instead splits each protected
//! region at a byte boundary and runs a *stronger* scheme over the first
//! `head_len` bytes and a cheaper one over the rest, concatenating the two
//! parity regions (head parity first).
//!
//! Under the chunk-parallel driver the split applies per chunk, so the
//! first chunk — where SZ puts its Huffman table and ZFP its stream
//! header — always lands in head protection, and every later chunk donates
//! its first `head_len` bytes as a hedge for block-metadata locality.
//!
//! The [`uep_sz`]/[`uep_zfp`] presets pair a heavy and a light
//! [`RsBlock`]: strong unknown-location correction where a hit is fatal,
//! ~0.5–1.8 % asymptotic overhead where it is not.

use crate::codec::{Capability, CorrectionReport, EccError, EccScheme};
use crate::rsblock::RsBlock;

/// Two-tier unequal error protection over a head/tail byte split.
#[derive(Debug, Clone)]
pub struct Uep<H: EccScheme, T: EccScheme> {
    head: H,
    tail: T,
    head_len: usize,
}

impl<H: EccScheme, T: EccScheme> Uep<H, T> {
    /// Protect the first `head_len` bytes of each region with `head`, the
    /// remainder with `tail`.
    pub fn new(head: H, tail: T, head_len: usize) -> Result<Uep<H, T>, EccError> {
        if head_len == 0 {
            return Err(EccError::InvalidConfig("uep: head_len must be at least 1 byte".into()));
        }
        Ok(Uep { head, tail, head_len })
    }

    /// The strong-code prefix length in bytes.
    pub fn head_len(&self) -> usize {
        self.head_len
    }

    /// The head (strong) scheme.
    pub fn head(&self) -> &H {
        &self.head
    }

    /// The tail (light) scheme.
    pub fn tail(&self) -> &T {
        &self.tail
    }

    fn split(&self, data_len: usize) -> usize {
        self.head_len.min(data_len)
    }
}

impl<H: EccScheme, T: EccScheme> EccScheme for Uep<H, T> {
    fn name(&self) -> &'static str {
        "uep"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        let h = self.split(data_len);
        self.head.parity_len(h) + self.tail.parity_len(data_len - h)
    }

    fn storage_overhead(&self) -> f64 {
        // Asymptotic: the head is a fixed-size prefix, so the tail rate
        // dominates as the region grows.
        self.tail.storage_overhead()
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        let h = self.split(data.len());
        let (hd, td) = data.split_at(h);
        let (hp, tp) = parity.split_at_mut(self.head.parity_len(h));
        self.head.encode_parity_into(hd, hp);
        self.tail.encode_parity_into(td, tp);
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!("uep parity region {} bytes, expected {expected}", parity.len()),
            });
        }
        let h = self.split(data.len());
        let hp_len = self.head.parity_len(h);
        let (hd, td) = data.split_at_mut(h);
        let (hp, tp) = parity.split_at_mut(hp_len);
        let mut report = self.head.verify_and_correct(hd, hp)?;
        report.merge(&self.tail.verify_and_correct(td, tp)?);
        Ok(report)
    }

    fn capability(&self) -> Capability {
        let h = self.head.capability();
        let t = self.tail.capability();
        Capability {
            detects_sparse: h.detects_sparse && t.detects_sparse,
            corrects_sparse: h.corrects_sparse && t.corrects_sparse,
            corrects_burst: h.corrects_burst && t.corrects_burst,
            // The advertised uniform rate is the weaker tier's; the head
            // tier's surplus is the point of the scheme, not a promise.
            correctable_per_mb: h.correctable_per_mb.min(t.correctable_per_mb),
        }
    }

    fn min_bytes_per_thread(&self) -> usize {
        self.head.min_bytes_per_thread().max(self.tail.min_bytes_per_thread())
    }
}

/// SZ preset: RS(191|64) over the first 64 KiB of each chunk (Huffman
/// table territory — 32 unknown-location byte repairs per codeword), a
/// light RS(247|8) over bit-plane tails (~3.3 % asymptotic overhead).
pub fn uep_sz() -> Result<Uep<RsBlock, RsBlock>, EccError> {
    Uep::new(RsBlock::new(64)?, RsBlock::new(8)?, 64 * 1024)
}

/// ZFP preset: RS(223|32) over the first 16 KiB of each chunk (stream
/// header + leading block metadata), RS(251|4) over the rest (~1.6 %
/// asymptotic overhead).
pub fn uep_zfp() -> Result<Uep<RsBlock, RsBlock>, EccError> {
    Uep::new(RsBlock::new(32)?, RsBlock::new(4)?, 16 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 193) ^ (i >> 4)) as u8).collect()
    }

    #[test]
    fn validates_head_len() {
        let h = RsBlock::new(16).unwrap();
        let t = RsBlock::new(4).unwrap();
        assert!(Uep::new(h.clone(), t.clone(), 0).is_err());
        assert!(Uep::new(h, t, 1024).is_ok());
    }

    #[test]
    fn clean_round_trip_spanning_the_split() {
        let s = Uep::new(RsBlock::new(16).unwrap(), RsBlock::new(4).unwrap(), 1024).unwrap();
        for n in [0usize, 1, 1023, 1024, 1025, 4096, 20_000] {
            let data = sample(n);
            let enc = s.encode(&data);
            assert_eq!(enc.len(), n + s.parity_len(n));
            let (out, report) = s.decode(&enc, n).unwrap();
            assert_eq!(out, data, "n={n}");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn head_survives_damage_that_would_kill_the_tail_code() {
        let s = Uep::new(RsBlock::new(64).unwrap(), RsBlock::new(8).unwrap(), 1024).unwrap();
        let data = sample(8192);
        let enc = s.encode(&data);
        let mut bad = enc.clone();
        // 20 corrupted bytes inside the first head codeword: far beyond the
        // tail code's 4-per-codeword budget, within the head's 32.
        for b in &mut bad[50..70] {
            *b ^= 0xC3;
        }
        let (out, report) = s.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_bits, 20);

        // The same damage against the bare tail code fails.
        let tail = RsBlock::new(8).unwrap();
        let mut bare = tail.encode(&data);
        for b in &mut bare[50..70] {
            *b ^= 0xC3;
        }
        let r = tail.decode(&bare, data.len());
        assert!(r.is_err() || r.is_ok_and(|(out, _)| out != data));
    }

    #[test]
    fn tail_damage_within_budget_is_corrected() {
        let s = uep_zfp().unwrap();
        let n = 64 * 1024;
        let data = sample(n);
        let enc = s.encode(&data);
        let mut bad = enc.clone();
        // 2 corrupted bytes in one tail codeword (budget: 2 per codeword).
        bad[40_000] ^= 0xFF;
        bad[40_001] ^= 0xFF;
        let (out, _) = s.decode(&bad, n).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn presets_build_and_advertise_sane_tradeoffs() {
        let sz = uep_sz().unwrap();
        let zfp = uep_zfp().unwrap();
        assert!(sz.storage_overhead() < 0.04);
        assert!(zfp.storage_overhead() < 0.02);
        for cap in [sz.capability(), zfp.capability()] {
            assert!(cap.detects_sparse && cap.corrects_sparse && cap.corrects_burst);
            assert!(cap.correctable_per_mb >= 1.0);
        }
        // The head tier must actually be stronger than the tail tier.
        assert!(sz.head().max_errors() > sz.tail().max_errors());
        assert!(zfp.head().max_errors() > zfp.tail().max_errors());
    }

    #[test]
    fn parity_layout_is_head_then_tail() {
        let s = Uep::new(RsBlock::new(16).unwrap(), RsBlock::new(4).unwrap(), 500).unwrap();
        let n = 2000;
        assert_eq!(
            s.parity_len(n),
            RsBlock::new(16).unwrap().parity_len(500) + RsBlock::new(4).unwrap().parity_len(1500)
        );
        // Short regions fall entirely into the head tier.
        assert_eq!(s.parity_len(100), RsBlock::new(16).unwrap().parity_len(100));
    }

    #[test]
    fn malformed_parity_length_rejected() {
        let s = uep_sz().unwrap();
        let mut data = sample(100);
        let mut parity = vec![0u8; 1];
        assert!(matches!(
            s.verify_and_correct(&mut data, &mut parity),
            Err(EccError::Malformed { .. })
        ));
    }
}
