//! Hamming single-error-correcting codes.
//!
//! ARC offers Hamming over one-byte blocks — Hamming(12,8) — and eight-byte
//! blocks — Hamming(71,64) (§5.2: "both generate parity bits for one byte or
//! eight byte data blocks at a time"). The wide variant trades correction
//! density for storage: 4 parity bits per 8 data bits (50% overhead) versus
//! 7 per 64 (10.9%).
//!
//! Layout: data bytes are stored unmodified; the packed parity bits follow in
//! a trailing region, `r` bits per block. This keeps the encoded stream
//! readable without decoding and lets the syndrome logic repair errors in
//! either region.

use crate::bits::{get_bit, read_bits_at, set_bit, PackedBitWriter};
use crate::codec::{
    single_correct_rate_per_mb, Capability, CorrectionReport, EccError, EccScheme, MB,
};

/// Block width choices for Hamming and SEC-DED codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockWidth {
    /// 8 data bits per codeword — Hamming(12,8) / SEC-DED(13,8).
    W8,
    /// 64 data bits per codeword — Hamming(71,64) / SEC-DED(72,64).
    W64,
}

impl BlockWidth {
    /// Data bits per block.
    pub fn data_bits(self) -> u32 {
        match self {
            BlockWidth::W8 => 8,
            BlockWidth::W64 => 64,
        }
    }

    /// Data bytes per block.
    pub fn data_bytes(self) -> usize {
        (self.data_bits() / 8) as usize
    }

    /// Hamming parity bits per block (excluding SEC-DED's extra bit).
    pub fn hamming_parity_bits(self) -> u32 {
        match self {
            BlockWidth::W8 => 4,  // 2^4 = 16 >= 8 + 4 + 1
            BlockWidth::W64 => 7, // 2^7 = 128 >= 64 + 7 + 1
        }
    }
}

/// Positional layout of a Hamming codeword: positions 1..=n, powers of two
/// hold parity, the rest hold data bits in order.
#[derive(Debug)]
pub(crate) struct Layout {
    /// Number of parity bits r.
    pub r: u32,
    /// Codeword length n = d + r.
    pub n: u32,
    /// For each parity bit i, a mask over the d data bits it covers.
    pub data_masks: Vec<u64>,
    /// Position (1-based) of each data bit within the codeword (kept for
    /// documentation and the layout tests; decoding uses the inverse map).
    #[cfg_attr(not(test), allow(dead_code))]
    pub data_pos: Vec<u32>,
    /// Inverse map: codeword position → data-bit index (None for parity).
    pub pos_to_databit: Vec<Option<u32>>,
}

impl Layout {
    pub(crate) fn new(width: BlockWidth) -> Layout {
        let d = width.data_bits();
        let r = width.hamming_parity_bits();
        let n = d + r;
        // arc-lint: bounded(d, n, r derive from the fixed BlockWidth enum (<= 64 data bits))
        let mut data_pos = Vec::with_capacity(d as usize);
        // arc-lint: bounded(n = d + r derives from the fixed BlockWidth enum)
        let mut pos_to_databit = vec![None; (n + 1) as usize];
        let mut j = 0u32;
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                data_pos.push(pos);
                pos_to_databit[pos as usize] = Some(j);
                j += 1;
            }
        }
        debug_assert_eq!(j, d);
        // arc-lint: bounded(r derives from the fixed BlockWidth enum)
        let mut data_masks = vec![0u64; r as usize];
        for (bit, &pos) in data_pos.iter().enumerate() {
            for (i, mask) in data_masks.iter_mut().enumerate() {
                if pos & (1 << i) != 0 {
                    *mask |= 1u64 << bit;
                }
            }
        }
        Layout { r, n, data_masks, data_pos, pos_to_databit }
    }

    /// Parity bits for one data block (low `r` bits of the result).
    #[inline]
    pub(crate) fn parity_of(&self, data: u64) -> u32 {
        let mut p = 0u32;
        for (i, &mask) in self.data_masks.iter().enumerate() {
            p |= (((data & mask).count_ones()) & 1) << i;
        }
        p
    }
}

static LAYOUT_W8: std::sync::OnceLock<Layout> = std::sync::OnceLock::new();
static LAYOUT_W64: std::sync::OnceLock<Layout> = std::sync::OnceLock::new();

pub(crate) fn layout(width: BlockWidth) -> &'static Layout {
    match width {
        BlockWidth::W8 => LAYOUT_W8.get_or_init(|| Layout::new(BlockWidth::W8)),
        BlockWidth::W64 => LAYOUT_W64.get_or_init(|| Layout::new(BlockWidth::W64)),
    }
}

/// Read block `i` of `data` as a little-endian integer, zero-padding the tail.
#[inline]
pub(crate) fn load_block(data: &[u8], i: usize, width: BlockWidth) -> u64 {
    let bs = width.data_bytes();
    let start = i * bs;
    if start + 8 <= data.len() && bs == 8 {
        // Full W64 block: one unaligned word load via a fixed-size copy the
        // guard above makes infallible.
        let mut w = [0u8; 8];
        w.copy_from_slice(&data[start..start + 8]);
        return u64::from_le_bytes(w);
    }
    let end = (start + bs).min(data.len());
    let mut v = 0u64;
    for (k, &b) in data[start..end].iter().enumerate() {
        v |= (b as u64) << (8 * k);
    }
    v
}

/// Write block `i` back into `data` (tail bytes beyond the slice are dropped;
/// padding bits can never be flipped by correction because they are zero in
/// every recomputation).
#[inline]
pub(crate) fn store_block(data: &mut [u8], i: usize, width: BlockWidth, v: u64) {
    let bs = width.data_bytes();
    let start = i * bs;
    let end = (start + bs).min(data.len());
    for (k, b) in data[start..end].iter_mut().enumerate() {
        *b = (v >> (8 * k)) as u8;
    }
}

/// Hamming SEC code over [`BlockWidth`] blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hamming {
    /// Codeword width.
    pub width: BlockWidth,
}

impl Hamming {
    /// Hamming(12,8): one data byte per codeword.
    pub fn w8() -> Hamming {
        Hamming { width: BlockWidth::W8 }
    }

    /// Hamming(71,64): eight data bytes per codeword.
    pub fn w64() -> Hamming {
        Hamming { width: BlockWidth::W64 }
    }

    fn blocks(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.width.data_bytes())
    }
}

impl EccScheme for Hamming {
    fn name(&self) -> &'static str {
        "hamming"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        let bits = self.blocks(data_len) as u64 * self.width.hamming_parity_bits() as u64;
        bits.div_ceil(8) as usize
    }

    fn storage_overhead(&self) -> f64 {
        self.width.hamming_parity_bits() as f64 / self.width.data_bits() as f64
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        let lay = layout(self.width);
        let blocks = self.blocks(data.len());
        // r-bit parity groups packed with whole-word stores; the writer
        // covers every parity byte, so no fill(0) pass is needed.
        let mut w = PackedBitWriter::new(parity);
        for i in 0..blocks {
            w.push(lay.parity_of(load_block(data, i, self.width)) as u64, lay.r);
        }
        w.finish();
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "hamming parity region {} bytes, expected {expected}",
                    parity.len()
                ),
            });
        }
        let lay = layout(self.width);
        let r = lay.r as u64;
        let blocks = self.blocks(data.len());
        let mut report = CorrectionReport { blocks_checked: blocks as u64, ..Default::default() };
        for i in 0..blocks {
            let mut block = load_block(data, i, self.width);
            let recomputed = lay.parity_of(block);
            let base = i as u64 * r;
            let stored = read_bits_at(parity, base, lay.r) as u32;
            let syndrome = recomputed ^ stored;
            if syndrome == 0 {
                continue;
            }
            if syndrome > lay.n {
                return Err(EccError::Uncorrectable {
                    scheme: "hamming",
                    detail: format!(
                        "impossible syndrome {syndrome} in block {i} (multi-bit error)"
                    ),
                });
            }
            match lay.pos_to_databit[syndrome as usize] {
                Some(bit) => {
                    // Flipping a zero-padding bit of the tail block means the
                    // error is actually beyond the data — multi-bit damage.
                    let tail_bits = (data.len() - i * self.width.data_bytes())
                        .min(self.width.data_bytes()) as u32
                        * 8;
                    if bit >= tail_bits {
                        return Err(EccError::Uncorrectable {
                            scheme: "hamming",
                            detail: format!("syndrome points into tail padding of block {i}"),
                        });
                    }
                    block ^= 1u64 << bit;
                    store_block(data, i, self.width, block);
                    report.corrected_bits += 1;
                }
                None => {
                    // The flipped bit was a stored parity bit; repair it.
                    let pbit = syndrome.trailing_zeros() as u64;
                    let idx = base + pbit;
                    let cur = get_bit(parity, idx);
                    set_bit(parity, idx, !cur);
                    report.corrected_bits += 1;
                }
            }
        }
        Ok(report)
    }

    fn capability(&self) -> Capability {
        let codewords_per_mb = MB / self.width.data_bytes() as f64;
        Capability {
            detects_sparse: true,
            corrects_sparse: true,
            corrects_burst: false,
            correctable_per_mb: single_correct_rate_per_mb(codewords_per_mb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 131 + 17) % 251) as u8).collect()
    }

    #[test]
    fn layout_w8_is_12_8() {
        let lay = layout(BlockWidth::W8);
        assert_eq!(lay.r, 4);
        assert_eq!(lay.n, 12);
        assert_eq!(lay.data_pos, vec![3, 5, 6, 7, 9, 10, 11, 12]);
    }

    #[test]
    fn layout_w64_is_71_64() {
        let lay = layout(BlockWidth::W64);
        assert_eq!(lay.r, 7);
        assert_eq!(lay.n, 71);
        assert_eq!(lay.data_pos.len(), 64);
    }

    #[test]
    fn clean_round_trip_both_widths() {
        for h in [Hamming::w8(), Hamming::w64()] {
            let data = sample(1000);
            let enc = h.encode(&data);
            let (out, report) = h.decode(&enc, data.len()).unwrap();
            assert_eq!(out, data);
            assert!(report.is_clean());
        }
    }

    #[test]
    fn packed_parity_matches_per_bit_reference() {
        // The word-packed encoder must be bit-identical to the per-bit
        // set_bit reference at every ragged length (wire format is pinned
        // by the golden-container snapshots).
        for h in [Hamming::w8(), Hamming::w64()] {
            let lay = layout(h.width);
            for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1001] {
                let data = sample(len);
                let mut reference = vec![0u8; h.parity_len(len)];
                for i in 0..len.div_ceil(h.width.data_bytes()) {
                    let p = lay.parity_of(load_block(&data, i, h.width));
                    for bit in 0..lay.r {
                        if p & (1 << bit) != 0 {
                            set_bit(&mut reference, i as u64 * lay.r as u64 + bit as u64, true);
                        }
                    }
                }
                assert_eq!(h.encode_parity(&data), reference, "width={:?} len={len}", h.width);
            }
        }
    }

    #[test]
    fn corrects_every_single_bit_flip_w8() {
        let h = Hamming::w8();
        let data = sample(48);
        let enc = h.encode(&data);
        for bit in 0..(enc.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, report) = h.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "bit {bit} not corrected");
            assert_eq!(report.corrected_bits, 1, "bit {bit}");
        }
    }

    #[test]
    fn corrects_every_single_bit_flip_w64() {
        let h = Hamming::w64();
        let data = sample(128);
        let enc = h.encode(&data);
        for bit in 0..(enc.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, _) = h.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "bit {bit} not corrected");
        }
    }

    #[test]
    fn corrects_one_flip_per_block_many_blocks() {
        let h = Hamming::w64();
        let data = sample(8 * 64);
        let mut enc = h.encode(&data);
        // One flip in each of the 64 blocks (64 bits each) — all
        // independently correctable.
        for i in 0..64u64 {
            flip_bit(&mut enc, i * 64 + (i % 64));
        }
        let (out, report) = h.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_bits, 64);
    }

    #[test]
    fn ragged_tail_round_trips_and_corrects() {
        let h = Hamming::w64();
        let data = sample(61); // not a multiple of 8
        let enc = h.encode(&data);
        let (out, _) = h.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        for bit in 0..(data.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, _) = h.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "tail bit {bit}");
        }
    }

    #[test]
    fn double_error_in_block_is_not_silently_clean() {
        // Plain Hamming may miscorrect a double error; it must never return
        // the corrupted data while claiming zero corrections.
        let h = Hamming::w8();
        let data = sample(16);
        let mut enc = h.encode(&data);
        flip_bit(&mut enc, 0);
        flip_bit(&mut enc, 3);
        match h.decode(&enc, data.len()) {
            Err(_) => {}
            Ok((out, report)) => {
                assert!(!report.is_clean());
                // Miscorrection is permitted (classic Hamming limitation),
                // silence is not.
                let _ = out;
            }
        }
    }

    #[test]
    fn overheads_match_paper_widths() {
        assert!((Hamming::w8().storage_overhead() - 0.5).abs() < 1e-12);
        assert!((Hamming::w64().storage_overhead() - 7.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn capability_reports_sparse_correction() {
        let cap = Hamming::w64().capability();
        assert!(cap.corrects_sparse && cap.detects_sparse && !cap.corrects_burst);
        assert!(cap.correctable_per_mb > 10.0);
    }

    #[test]
    fn empty_input() {
        let h = Hamming::w8();
        let enc = h.encode(&[]);
        assert!(enc.is_empty());
        assert!(h.decode(&enc, 0).unwrap().0.is_empty());
    }
}
