//! CRC-32 (IEEE 802.3 polynomial) used to locate corrupted Reed-Solomon
//! devices.
//!
//! Jerasure — the library ARC wraps for Reed-Solomon — is an *erasure* code:
//! it repairs devices whose locations are already known. Soft errors give no
//! such location, so the device codec in this crate stores a CRC-32 per
//! device; devices whose checksum no longer matches are declared erased and
//! handed to the erasure decoder. A 32-bit CRC detects all burst errors up to
//! 32 bits and misses a random corruption with probability 2^-32 per device,
//! which is negligible beside the paper's error rates (§6.4: ~1 error per
//! 1.9 days per 8,500-node machine).

/// Length in bytes of a serialized CRC value.
pub const CRC_LEN: usize = 4;

const POLY: u32 = 0xEDB8_8320; // reflected IEEE polynomial

/// Slice-by-16 lookup tables. `t[0]` is the classic byte-at-a-time table;
/// `t[j][b]` advances the contribution of byte `b` through `j` further zero
/// bytes, so sixteen independent lookups fold a whole 16-byte block into the
/// state at once (Intel's "slicing-by-8" generalized). Values are identical
/// to the byte-at-a-time CRC for every input — only throughput changes.
static TABLES: std::sync::OnceLock<[[u32; 256]; 16]> = std::sync::OnceLock::new();

fn tables() -> &'static [[u32; 256]; 16] {
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 16];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            t[0][i as usize] = c;
        }
        for j in 1..16 {
            for i in 0..256 {
                let prev = t[j - 1][i];
                t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Force-build the CRC tables (called from [`crate::gf256::warm_tables`]).
pub(crate) fn warm_crc_tables() {
    let _ = tables();
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    ///
    /// Slice-by-16 main loop: each iteration folds 16 input bytes with 16
    /// independent table lookups (no loop-carried dependency between them),
    /// which is ~an order of magnitude faster than the byte-at-a-time
    /// recurrence and bit-identical to it.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut c = self.state;
        let mut blocks = data.chunks_exact(16);
        for d in &mut blocks {
            let x = c ^ u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
            c = t[15][(x & 0xFF) as usize]
                ^ t[14][((x >> 8) & 0xFF) as usize]
                ^ t[13][((x >> 16) & 0xFF) as usize]
                ^ t[12][(x >> 24) as usize]
                ^ t[11][usize::from(d[4])]
                ^ t[10][usize::from(d[5])]
                ^ t[9][usize::from(d[6])]
                ^ t[8][usize::from(d[7])]
                ^ t[7][usize::from(d[8])]
                ^ t[6][usize::from(d[9])]
                ^ t[5][usize::from(d[10])]
                ^ t[4][usize::from(d[11])]
                ^ t[3][usize::from(d[12])]
                ^ t[2][usize::from(d[13])]
                ^ t[1][usize::from(d[14])]
                ^ t[0][usize::from(d[15])];
        }
        for &b in blocks.remainder() {
            c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

/// CRC-32 of a slice that is logically extended with `pad` zero bytes.
///
/// The last Reed-Solomon data device is usually shorter than the device size;
/// its checksum is computed over the zero-padded logical device so encode and
/// decode agree without materializing the padding.
pub fn crc32_zero_padded(data: &[u8], pad: usize) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    const ZEROS: [u8; 256] = [0u8; 256];
    let mut remaining = pad;
    while remaining > 0 {
        let n = remaining.min(ZEROS.len());
        h.update(&ZEROS[..n]);
        remaining -= n;
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn zero_padding_matches_explicit_zeros() {
        let data = b"device payload";
        let mut padded = data.to_vec();
        padded.extend(std::iter::repeat_n(0u8, 700));
        assert_eq!(crc32_zero_padded(data, 700), crc32(&padded));
        assert_eq!(crc32_zero_padded(data, 0), crc32(data));
    }

    /// The pre-slicing byte-at-a-time recurrence, kept as the ground truth
    /// the slice-by-16 loop must reproduce bit-for-bit.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let t = tables();
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn slice_by_16_matches_bytewise_reference() {
        let data: Vec<u8> =
            (0..5000u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect();
        for len in [0usize, 1, 3, 15, 16, 17, 31, 32, 33, 64, 255, 256, 1000, 4999, 5000] {
            assert_eq!(crc32(&data[..len]), crc32_bytewise(&data[..len]), "len={len}");
        }
        // Unaligned starts exercise every remainder phase.
        for off in 0..17usize {
            assert_eq!(crc32(&data[off..]), crc32_bytewise(&data[off..]), "off={off}");
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let base = crc32(&data);
        let mut corrupted = data.clone();
        for bit in [0u64, 1, 8, 4095 * 8 + 7] {
            crate::bits::flip_bit(&mut corrupted, bit);
            assert_ne!(crc32(&corrupted), base, "bit {bit}");
            crate::bits::flip_bit(&mut corrupted, bit);
        }
    }
}
