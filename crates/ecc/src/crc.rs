//! CRC-32 (IEEE 802.3 polynomial) used to locate corrupted Reed-Solomon
//! devices.
//!
//! Jerasure — the library ARC wraps for Reed-Solomon — is an *erasure* code:
//! it repairs devices whose locations are already known. Soft errors give no
//! such location, so the device codec in this crate stores a CRC-32 per
//! device; devices whose checksum no longer matches are declared erased and
//! handed to the erasure decoder. A 32-bit CRC detects all burst errors up to
//! 32 bits and misses a random corruption with probability 2^-32 per device,
//! which is negligible beside the paper's error rates (§6.4: ~1 error per
//! 1.9 days per 8,500-node machine).

/// Length in bytes of a serialized CRC value.
pub const CRC_LEN: usize = 4;

const POLY: u32 = 0xEDB8_8320; // reflected IEEE polynomial

static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Streaming CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

/// CRC-32 of a slice that is logically extended with `pad` zero bytes.
///
/// The last Reed-Solomon data device is usually shorter than the device size;
/// its checksum is computed over the zero-padded logical device so encode and
/// decode agree without materializing the padding.
pub fn crc32_zero_padded(data: &[u8], pad: usize) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    const ZEROS: [u8; 256] = [0u8; 256];
    let mut remaining = pad;
    while remaining > 0 {
        let n = remaining.min(ZEROS.len());
        h.update(&ZEROS[..n]);
        remaining -= n;
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(&data));
    }

    #[test]
    fn zero_padding_matches_explicit_zeros() {
        let data = b"device payload";
        let mut padded = data.to_vec();
        padded.extend(std::iter::repeat_n(0u8, 700));
        assert_eq!(crc32_zero_padded(data, 700), crc32(&padded));
        assert_eq!(crc32_zero_padded(data, 0), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let base = crc32(&data);
        let mut corrupted = data.clone();
        for bit in [0u64, 1, 8, 4095 * 8 + 7] {
            crate::bits::flip_bit(&mut corrupted, bit);
            assert_ne!(crc32(&corrupted), base, "bit {bit}");
            crate::bits::flip_bit(&mut corrupted, bit);
        }
    }
}
