//! Codeword-level Reed-Solomon with unknown-location error correction.
//!
//! The device codec in [`crate::rs`] locates corruption with per-device
//! checksums and repairs it as erasures — Jerasure's model. This module is
//! the classical BCH-view alternative: systematic RS(n, k) codewords over
//! GF(2^8) decoded with syndromes → Berlekamp–Massey → Chien search → Forney,
//! correcting up to ⌊nsym/2⌋ *unknown-location* symbol errors per codeword
//! (and up to `nsym` errors when all locations are known).
//!
//! ARC uses this codec where checksums are unavailable: the self-describing
//! container header must be decodable before any metadata is trusted. It is
//! also benchmarked as an ablation against the CRC-erasure design.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::codec::EccError;
use crate::gf256::{Gf, Poly};

/// Maximum codeword length in GF(2^8).
pub const MAX_CODEWORD: usize = 255;

/// Per-`nsym` memo of generator polynomials.
///
/// g(x) costs O(nsym²) `Poly::mul` work to rebuild, and `RsCodeword::new`
/// runs on every container-header decode; the polynomial is immutable, so
/// all codecs with the same `nsym` share one `Arc`.
static GEN_CACHE: OnceLock<Mutex<HashMap<usize, Arc<Poly>>>> = OnceLock::new();

/// A systematic Reed-Solomon codeword codec with `nsym` parity symbols.
#[derive(Debug, Clone)]
pub struct RsCodeword {
    /// Number of parity symbols appended to each message.
    pub nsym: usize,
    generator: Arc<Poly>,
}

impl RsCodeword {
    /// Create a codec with `nsym` parity symbols (1 ≤ nsym < 255).
    pub fn new(nsym: usize) -> Result<RsCodeword, EccError> {
        if nsym == 0 || nsym >= MAX_CODEWORD {
            return Err(EccError::InvalidConfig(format!(
                "rs codeword: nsym must be in 1..{MAX_CODEWORD}, got {nsym}"
            )));
        }
        let cache = GEN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let generator = cache
            .lock()
            // Poison only means another thread died mid-insert; the memo
            // table stays valid, so recover the guard.
            .unwrap_or_else(|p| p.into_inner())
            .entry(nsym)
            .or_insert_with(|| {
                // g(x) = ∏_{i=0}^{nsym-1} (x − α^i)
                let mut g = Poly::constant(Gf::ONE);
                for i in 0..nsym {
                    g = g.mul(&Poly::from_coeffs(vec![Gf::alpha_pow(i as i32), Gf::ONE]));
                }
                Arc::new(g)
            })
            .clone();
        Ok(RsCodeword { nsym, generator })
    }

    /// Errors correctable per codeword when locations are unknown.
    pub fn max_errors(&self) -> usize {
        self.nsym / 2
    }

    /// Largest message length encodable in one codeword.
    pub fn max_message_len(&self) -> usize {
        MAX_CODEWORD - self.nsym
    }

    /// Encode `msg`, returning `msg ‖ parity` (`msg.len() + nsym` bytes).
    ///
    /// # Panics
    /// Panics if the message is too long for one codeword.
    pub fn encode(&self, msg: &[u8]) -> Vec<u8> {
        assert!(
            msg.len() + self.nsym <= MAX_CODEWORD,
            "message of {} bytes exceeds RS({MAX_CODEWORD}) with nsym={}",
            msg.len(),
            self.nsym
        );
        // Remainder of msg·x^nsym mod g(x); polynomial coefficient i is the
        // symbol at distance i from the *end* of the codeword.
        // arc-lint: bounded(nsym <= 255 enforced at RsCodeword construction)
        let mut coeffs = vec![Gf::ZERO; self.nsym];
        coeffs.extend(msg.iter().rev().map(|&b| Gf(b)));
        let rem = Poly::from_coeffs(coeffs).rem(&self.generator);
        let mut out = Vec::with_capacity(msg.len() + self.nsym);
        out.extend_from_slice(msg);
        for i in (0..self.nsym).rev() {
            out.push(rem.coeff(i).0);
        }
        out
    }

    fn codeword_poly(codeword: &[u8]) -> Poly {
        Poly::from_coeffs(codeword.iter().rev().map(|&b| Gf(b)).collect())
    }

    fn syndromes(&self, cw: &Poly) -> Vec<Gf> {
        (0..self.nsym).map(|i| cw.eval(Gf::alpha_pow(i as i32))).collect()
    }

    /// Decode a received codeword, correcting up to ⌊nsym/2⌋ unknown errors.
    /// Returns the message portion and the number of symbols repaired.
    pub fn decode(&self, received: &[u8]) -> Result<(Vec<u8>, usize), EccError> {
        self.decode_with_erasures(received, &[])
    }

    /// Decode with known erasure positions (indices into `received`).
    /// Corrects `e` erasures plus `t` errors whenever `e + 2t ≤ nsym`.
    pub fn decode_with_erasures(
        &self,
        received: &[u8],
        erasures: &[usize],
    ) -> Result<(Vec<u8>, usize), EccError> {
        let n = received.len();
        if n <= self.nsym || n > MAX_CODEWORD {
            return Err(EccError::Malformed {
                detail: format!("rs codeword length {n} invalid for nsym={}", self.nsym),
            });
        }
        if erasures.len() > self.nsym {
            return Err(EccError::Uncorrectable {
                scheme: "rs-codeword",
                detail: format!("{} erasures exceed nsym={}", erasures.len(), self.nsym),
            });
        }
        if erasures.iter().any(|&p| p >= n) {
            return Err(EccError::Malformed { detail: "erasure index out of range".into() });
        }
        let cw = Self::codeword_poly(received);
        let synd = self.syndromes(&cw);
        if synd.iter().all(|s| *s == Gf::ZERO) {
            return Ok((received[..n - self.nsym].to_vec(), 0));
        }
        // Erasure locator Γ(x) = ∏ (1 − x·α^{j_e}), j_e = poly position.
        let mut gamma = Poly::constant(Gf::ONE);
        for &pos in erasures {
            let j = (n - 1 - pos) as i32;
            gamma = gamma.mul(&Poly::from_coeffs(vec![Gf::ONE, Gf::alpha_pow(j)]));
        }
        // Modified (Forney) syndromes fold erasures out of BM's problem:
        // the coefficients of S(x)·Γ(x) from degree e upward form the
        // sequence the error locator must annihilate.
        let synd_poly = Poly::from_coeffs(synd.clone());
        let x_nsym = Poly::constant(Gf::ONE).shift(self.nsym);
        let modified = synd_poly.mul(&gamma).rem(&x_nsym);
        let forney =
            Poly::from_coeffs((erasures.len()..self.nsym).map(|i| modified.coeff(i)).collect());
        let sigma = self.berlekamp_massey(&forney, erasures.len())?;
        // Combined errata locator.
        let locator = sigma.mul(&gamma);
        let positions = self.chien_search(&locator, n)?;
        if positions.len() != locator.degree() {
            return Err(EccError::Uncorrectable {
                scheme: "rs-codeword",
                detail: "errata locator roots do not match its degree".into(),
            });
        }
        // Errata evaluator Ω(x) = S(x)·Λ(x) mod x^nsym, then Forney.
        let omega = synd_poly.mul(&locator).rem(&x_nsym);
        let loc_deriv = locator.derivative();
        let mut corrected = received.to_vec();
        for &pos in &positions {
            let j = (n - 1 - pos) as i32;
            let xj = Gf::alpha_pow(j);
            let xj_inv = xj.inv();
            let denom = loc_deriv.eval(xj_inv);
            if denom == Gf::ZERO {
                return Err(EccError::Uncorrectable {
                    scheme: "rs-codeword",
                    detail: "Forney denominator vanished".into(),
                });
            }
            let magnitude = xj.mul(omega.eval(xj_inv)).div(denom);
            corrected[pos] ^= magnitude.0;
        }
        // Paranoia: re-verify the repaired codeword.
        let recheck = self.syndromes(&Self::codeword_poly(&corrected));
        if recheck.iter().any(|s| *s != Gf::ZERO) {
            return Err(EccError::Uncorrectable {
                scheme: "rs-codeword",
                detail: "syndromes non-zero after correction (too many errors)".into(),
            });
        }
        Ok((corrected[..n - self.nsym].to_vec(), positions.len()))
    }

    /// Berlekamp–Massey on the (modified) syndromes, bounded so that
    /// erasures + 2·errors ≤ nsym.
    fn berlekamp_massey(&self, synd: &Poly, n_erasures: usize) -> Result<Poly, EccError> {
        let mut sigma = Poly::constant(Gf::ONE);
        let mut prev = Poly::constant(Gf::ONE);
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = Gf::ONE;
        let rounds = self.nsym - n_erasures;
        for i in 0..rounds {
            let mut delta = synd.coeff(i);
            for j in 1..=l {
                delta = delta.add(sigma.coeff(j).mul(synd.coeff(i - j)));
            }
            if delta == Gf::ZERO {
                m += 1;
            } else if 2 * l <= i {
                let temp = sigma.clone();
                let coef = delta.div(b);
                sigma = sigma.add(&prev.scale(coef).shift(m));
                prev = temp;
                l = i + 1 - l;
                b = delta;
                m = 1;
            } else {
                let coef = delta.div(b);
                sigma = sigma.add(&prev.scale(coef).shift(m));
                m += 1;
            }
        }
        if 2 * l > rounds {
            return Err(EccError::Uncorrectable {
                scheme: "rs-codeword",
                detail: format!("{l} errors exceed correction bound {}", rounds / 2),
            });
        }
        Ok(sigma)
    }

    /// Find codeword positions whose α-powers are roots of the locator.
    fn chien_search(&self, locator: &Poly, n: usize) -> Result<Vec<usize>, EccError> {
        let mut positions = Vec::new();
        for j in 0..n {
            if locator.eval(Gf::alpha_pow(j as i32).inv()) == Gf::ZERO {
                positions.push(n - 1 - j);
            }
        }
        Ok(positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 73 + 5) % 256) as u8).collect()
    }

    #[test]
    fn validates_nsym() {
        assert!(RsCodeword::new(0).is_err());
        assert!(RsCodeword::new(255).is_err());
        assert!(RsCodeword::new(32).is_ok());
    }

    #[test]
    fn clean_round_trip() {
        let rs = RsCodeword::new(16).unwrap();
        let msg = sample(100);
        let cw = rs.encode(&msg);
        assert_eq!(cw.len(), 116);
        let (out, fixed) = rs.decode(&cw).unwrap();
        assert_eq!(out, msg);
        assert_eq!(fixed, 0);
    }

    #[test]
    fn corrects_up_to_t_unknown_errors() {
        let rs = RsCodeword::new(16).unwrap();
        let msg = sample(64);
        let cw = rs.encode(&msg);
        for t in 1..=8usize {
            let mut bad = cw.clone();
            for e in 0..t {
                bad[e * 9 + 1] ^= (0x11 * (e + 1)) as u8;
            }
            let (out, fixed) = rs.decode(&bad).unwrap();
            assert_eq!(out, msg, "t={t}");
            assert_eq!(fixed, t, "t={t}");
        }
    }

    #[test]
    fn detects_more_than_t_errors() {
        let rs = RsCodeword::new(8).unwrap();
        let msg = sample(40);
        let cw = rs.encode(&msg);
        let mut bad = cw.clone();
        // 5 errors with t = 4: either Err, or a decode that cannot silently
        // return the original message claiming success with wrong content.
        for e in 0..5 {
            bad[e * 7] ^= 0xFF;
        }
        match rs.decode(&bad) {
            Err(_) => {}
            Ok((out, _)) => assert_ne!(out, msg, "not required to recover, only to not lie"),
        }
    }

    #[test]
    fn corrects_errors_in_parity_symbols() {
        let rs = RsCodeword::new(10).unwrap();
        let msg = sample(30);
        let mut cw = rs.encode(&msg);
        let n = cw.len();
        cw[n - 1] ^= 0xAA;
        cw[n - 5] ^= 0x01;
        let (out, fixed) = rs.decode(&cw).unwrap();
        assert_eq!(out, msg);
        assert_eq!(fixed, 2);
    }

    #[test]
    fn erasures_double_the_budget() {
        let rs = RsCodeword::new(8).unwrap();
        let msg = sample(40);
        let cw = rs.encode(&msg);
        // 8 erasures (= nsym) with known positions: correctable.
        let mut bad = cw.clone();
        let positions: Vec<usize> = (0..8).map(|i| i * 5).collect();
        for &p in &positions {
            bad[p] = 0;
        }
        let (out, fixed) = rs.decode_with_erasures(&bad, &positions).unwrap();
        assert_eq!(out, msg);
        assert!(fixed <= 8);
    }

    #[test]
    fn mixed_erasures_and_errors() {
        let rs = RsCodeword::new(8).unwrap();
        let msg = sample(40);
        let cw = rs.encode(&msg);
        let mut bad = cw.clone();
        // 4 erasures + 2 unknown errors: 4 + 2·2 = 8 ≤ nsym.
        let erasures = [0usize, 10, 20, 30];
        for &p in &erasures {
            bad[p] ^= 0x3C;
        }
        bad[5] ^= 0x77;
        bad[15] ^= 0x01;
        let (out, _) = rs.decode_with_erasures(&bad, &erasures).unwrap();
        assert_eq!(out, msg);
    }

    #[test]
    fn erasure_positions_validated() {
        let rs = RsCodeword::new(4).unwrap();
        let msg = sample(10);
        let cw = rs.encode(&msg);
        assert!(rs.decode_with_erasures(&cw, &[999]).is_err());
        assert!(rs.decode_with_erasures(&cw, &[0, 1, 2, 3, 4]).is_err());
    }

    #[test]
    fn max_sized_codeword() {
        let rs = RsCodeword::new(32).unwrap();
        let msg = sample(rs.max_message_len());
        let cw = rs.encode(&msg);
        assert_eq!(cw.len(), MAX_CODEWORD);
        let mut bad = cw.clone();
        for i in 0..16 {
            bad[i * 15] ^= 0x80;
        }
        let (out, fixed) = rs.decode(&bad).unwrap();
        assert_eq!(out, msg);
        assert_eq!(fixed, 16);
    }

    #[test]
    #[should_panic]
    fn oversized_message_panics() {
        let rs = RsCodeword::new(32).unwrap();
        rs.encode(&sample(packed_len()));
        fn packed_len() -> usize {
            MAX_CODEWORD
        }
    }

    #[test]
    fn burst_error_within_codeword() {
        let rs = RsCodeword::new(20).unwrap();
        let msg = sample(100);
        let cw = rs.encode(&msg);
        let mut bad = cw.clone();
        for b in &mut bad[40..50] {
            *b = 0x00;
        }
        let (out, fixed) = rs.decode(&bad).unwrap();
        assert_eq!(out, msg);
        assert!(fixed <= 10);
    }
}
