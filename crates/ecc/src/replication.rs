//! N-modular replication: the "keep multiple copies" baseline ECC.
//!
//! §2.2 motivates ECC as "requir[ing] significantly less overhead compared
//! to keeping multiple copies of a dataset". This codec makes that
//! comparison concrete: it stores `copies − 1` extra replicas and repairs
//! by majority vote per byte (with ≥3 copies) or detects divergence (with
//! 2). It also anchors the extension API added per the paper's future work
//! ("adding additional ECC algorithms").
//!
//! Voting corrects any damage pattern in which, for every byte position,
//! a strict majority of replicas agree — including long bursts confined to
//! a minority of replicas — at 100·(copies−1)% storage overhead.

use crate::codec::{Capability, CorrectionReport, EccError, EccScheme};
use crate::crc::crc32;

/// Little-endian u32 load from a `chunks_exact(4)` chunk; the clamped copy
/// keeps it abort-free even on a short slice.
#[inline]
fn le_u32(c: &[u8]) -> u32 {
    let mut w = [0u8; 4];
    let n = c.len().min(4);
    w[..n].copy_from_slice(&c[..n]);
    u32::from_le_bytes(w)
}

/// Replication codec configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Replication {
    /// Total copies stored (the original plus `copies − 1` replicas).
    pub copies: usize,
}

impl Replication {
    /// Create a replication scheme; `copies` must be ≥ 2.
    pub fn new(copies: usize) -> Result<Replication, EccError> {
        if !(2..=16).contains(&copies) {
            return Err(EccError::InvalidConfig(format!(
                "replication: copies must be in 2..=16, got {copies}"
            )));
        }
        Ok(Replication { copies })
    }

    /// Triple modular redundancy.
    pub fn tmr() -> Replication {
        Replication { copies: 3 }
    }
}

impl EccScheme for Replication {
    fn name(&self) -> &'static str {
        "replication"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        // Replicas plus a CRC per copy (original included) so two-copy mode
        // can tell *which* copy is good, and vote ties can be broken.
        (self.copies - 1) * data_len + 4 * self.copies
    }

    fn storage_overhead(&self) -> f64 {
        (self.copies - 1) as f64
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        let n = data.len();
        let (replicas, crc_table) = parity.split_at_mut((self.copies - 1) * n);
        if n > 0 {
            for replica in replicas.chunks_exact_mut(n) {
                replica.copy_from_slice(data);
            }
        }
        let crc = crc32(data).to_le_bytes();
        for slot in crc_table.chunks_exact_mut(4) {
            slot.copy_from_slice(&crc);
        }
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let n = data.len();
        let expected = self.parity_len(n);
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "replication parity region {} bytes, expected {expected}",
                    parity.len()
                ),
            });
        }
        let (replicas, crc_table) = parity.split_at_mut((self.copies - 1) * n);
        // Majority-vote the stored CRC.
        let crcs: Vec<u32> = crc_table.chunks_exact(4).map(le_u32).collect();
        let voted_crc = majority(&crcs);
        let mut report =
            CorrectionReport { blocks_checked: self.copies as u64, ..Default::default() };
        // Fast path: the primary copy checks out.
        if let Some(vc) = voted_crc {
            if crc32(data) == vc {
                repair_side_data(self, data, replicas, crc_table, vc, &mut report);
                return Ok(report);
            }
            // Any intact replica restores the data directly.
            for r in 0..self.copies - 1 {
                let rep = &replicas[r * n..(r + 1) * n];
                if crc32(rep) == vc {
                    data.copy_from_slice(rep);
                    report.corrected_devices += 1;
                    repair_side_data(self, data, replicas, crc_table, vc, &mut report);
                    return Ok(report);
                }
            }
        }
        // Every copy is damaged (or the CRC vote failed): byte-wise vote.
        if self.copies < 3 {
            return Err(EccError::Uncorrectable {
                scheme: "replication",
                detail: "both copies damaged; two-copy mode can only detect".into(),
            });
        }
        let mut corrected_bytes = 0u64;
        for i in 0..n {
            // arc-lint: bounded(copies is a small config constant validated at construction)
            let mut counts: Vec<(u8, usize)> = Vec::with_capacity(self.copies);
            let bump = |b: u8, counts: &mut Vec<(u8, usize)>| {
                if let Some(e) = counts.iter_mut().find(|(v, _)| *v == b) {
                    e.1 += 1;
                } else {
                    counts.push((b, 1));
                }
            };
            bump(data[i], &mut counts);
            for r in 0..self.copies - 1 {
                bump(replicas[r * n + i], &mut counts);
            }
            // `counts` always holds at least the primary's byte; the zero-vote
            // fallback routes the impossible case to the uncorrectable branch.
            let (winner, votes) =
                counts.iter().copied().max_by_key(|&(_, c)| c).unwrap_or((data[i], 0));
            if votes * 2 <= self.copies {
                return Err(EccError::Uncorrectable {
                    scheme: "replication",
                    detail: format!("no byte-level majority at offset {i}"),
                });
            }
            if data[i] != winner {
                data[i] = winner;
                corrected_bytes += 1;
            }
        }
        // Re-derive side data from the voted result.
        let vc = crc32(data);
        repair_side_data(self, data, replicas, crc_table, vc, &mut report);
        report.corrected_bits += corrected_bytes * 8;
        Ok(report)
    }

    fn capability(&self) -> Capability {
        Capability {
            detects_sparse: true,
            corrects_sparse: self.copies >= 3,
            corrects_burst: self.copies >= 3,
            // Votes survive any rate as long as no byte position is hit in
            // a majority of copies; conservative published figure mirrors
            // RS-class strength.
            correctable_per_mb: if self.copies >= 3 { 1024.0 } else { 0.0 },
        }
    }
}

/// Majority element of a small slice, if any.
fn majority(values: &[u32]) -> Option<u32> {
    values.iter().find(|&&v| values.iter().filter(|&&x| x == v).count() * 2 > values.len()).copied()
}

/// After the data is known-good, rewrite damaged replicas and CRC entries.
fn repair_side_data(
    scheme: &Replication,
    data: &[u8],
    replicas: &mut [u8],
    crc_table: &mut [u8],
    voted_crc: u32,
    report: &mut CorrectionReport,
) {
    let n = data.len();
    for r in 0..scheme.copies - 1 {
        let rep = &mut replicas[r * n..(r + 1) * n];
        if rep != data {
            rep.copy_from_slice(data);
            report.corrected_devices += 1;
        }
    }
    for c in crc_table.chunks_exact_mut(4) {
        let cur = le_u32(c);
        if cur != voted_crc {
            c.copy_from_slice(&voted_crc.to_le_bytes());
            report.corrected_bits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 41) ^ (i >> 4)) as u8).collect()
    }

    #[test]
    fn validates_copies() {
        assert!(Replication::new(1).is_err());
        assert!(Replication::new(17).is_err());
        assert!(Replication::new(2).is_ok());
        assert_eq!(Replication::tmr().copies, 3);
    }

    #[test]
    fn clean_round_trip() {
        for copies in [2usize, 3, 5] {
            let r = Replication::new(copies).unwrap();
            let data = sample(500);
            let enc = r.encode(&data);
            assert_eq!(enc.len(), data.len() + r.parity_len(data.len()));
            let (out, report) = r.decode(&enc, data.len()).unwrap();
            assert_eq!(out, data);
            assert!(report.is_clean(), "copies={copies}");
        }
    }

    #[test]
    fn tmr_survives_total_loss_of_primary() {
        let r = Replication::tmr();
        let data = sample(300);
        let mut enc = r.encode(&data);
        for b in &mut enc[..300] {
            *b = 0xEE;
        }
        let (out, report) = r.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_devices >= 1);
    }

    #[test]
    fn tmr_survives_scattered_damage_across_all_copies() {
        // Different byte positions damaged in each copy: vote still wins.
        let r = Replication::tmr();
        let data = sample(300);
        let mut enc = r.encode(&data);
        enc[10] ^= 0xFF; // primary
        enc[300 + 200] ^= 0xFF; // replica 0
        enc[600 + 100] ^= 0xFF; // replica 1
        let (out, _) = r.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn vote_fails_when_majority_is_damaged_at_same_offset() {
        let r = Replication::tmr();
        let data = sample(100);
        let mut enc = r.encode(&data);
        // Same offset, same garbage, in 2 of 3 copies *plus* distinct
        // damage elsewhere in each copy so no copy passes its CRC.
        enc[50] = 0xAB;
        enc[100 + 50] = 0xAB;
        enc[200 + 75] ^= 0x01;
        match r.decode(&enc, data.len()) {
            Err(_) => {}
            Ok((out, _)) => {
                // A same-value collusion at one offset wins the vote and
                // silently corrupts — the classic TMR common-mode limit.
                assert_ne!(out, data);
            }
        }
    }

    #[test]
    fn two_copies_detect_but_cannot_correct_double_damage() {
        let r = Replication::new(2).unwrap();
        let data = sample(200);
        let mut enc = r.encode(&data);
        enc[5] ^= 0x01;
        enc[200 + 150] ^= 0x10;
        assert!(r.decode(&enc, data.len()).is_err());
    }

    #[test]
    fn two_copies_recover_from_single_copy_damage() {
        let r = Replication::new(2).unwrap();
        let data = sample(200);
        let mut enc = r.encode(&data);
        enc[7] ^= 0x40; // only the primary is hit
        let (out, _) = r.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn corrupted_crc_table_self_heals() {
        let r = Replication::tmr();
        let data = sample(64);
        let mut enc = r.encode(&data);
        let crc_base = data.len() + 2 * data.len();
        enc[crc_base + 1] ^= 0xFF;
        let (out, report) = r.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(!report.is_clean());
    }

    #[test]
    fn overhead_reflects_copies() {
        assert_eq!(Replication::new(2).unwrap().storage_overhead(), 1.0);
        assert_eq!(Replication::tmr().storage_overhead(), 2.0);
    }

    #[test]
    fn capability_matches_copy_count() {
        assert!(!Replication::new(2).unwrap().capability().corrects_sparse);
        assert!(Replication::tmr().capability().corrects_burst);
    }

    #[test]
    fn empty_input() {
        let r = Replication::tmr();
        let enc = r.encode(&[]);
        let (out, _) = r.decode(&enc, 0).unwrap();
        assert!(out.is_empty());
    }
}
