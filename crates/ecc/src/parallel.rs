//! Chunk-parallel ECC encoding/decoding with explicit thread counts.
//!
//! The paper parallelizes every ECC method with OpenMP and caps resource use
//! at the thread count given to `arc_init()` (§5.1). This module is the Rust
//! equivalent: input is split into fixed-size chunks, each chunk is encoded
//! or verified independently on a dedicated rayon thread pool whose size the
//! caller controls, and per-chunk correction reports are merged.
//!
//! Encoded layout: `data ‖ parity₀ ‖ parity₁ ‖ …` — chunk parity regions
//! follow the (unmodified) data in order. Because every scheme's parity
//! length is a pure function of the chunk length, offsets are computable on
//! both sides without per-chunk headers, keeping overhead at exactly the
//! scheme's own rate.

use rayon::prelude::*;

use crate::codec::{CorrectionReport, EccError, EccScheme};
use crate::config::EccConfig;

/// Default chunk size (1 MiB): large enough to amortize dispatch, small
/// enough that a 26 MB CESM buffer spreads across 26+ threads.
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 20;

/// A chunk-parallel codec for one ECC scheme at a fixed thread count.
///
/// Generic over the scheme so both the built-in [`EccConfig`] space and
/// custom schemes registered through ARC's extension API (boxed
/// `Arc<dyn EccScheme>`) get identical chunking and thread semantics.
pub struct ParallelCodec<S: EccScheme = EccConfig> {
    config: S,
    chunk_size: usize,
    threads: usize,
    pool: Option<rayon::ThreadPool>,
}

impl<S: EccScheme + std::fmt::Debug> std::fmt::Debug for ParallelCodec<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelCodec")
            .field("config", &self.config)
            .field("chunk_size", &self.chunk_size)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<S: EccScheme> ParallelCodec<S> {
    /// Create a codec running on `threads` worker threads (1 = in-line
    /// sequential execution, no pool is spawned).
    pub fn new(config: S, threads: usize) -> Result<ParallelCodec<S>, EccError> {
        Self::with_chunk_size(config, threads, DEFAULT_CHUNK_SIZE)
    }

    /// As [`ParallelCodec::new`] with an explicit chunk size.
    pub fn with_chunk_size(
        config: S,
        threads: usize,
        chunk_size: usize,
    ) -> Result<ParallelCodec<S>, EccError> {
        if threads == 0 {
            return Err(EccError::InvalidConfig("thread count must be >= 1".into()));
        }
        if chunk_size == 0 {
            return Err(EccError::InvalidConfig("chunk size must be >= 1".into()));
        }
        let pool = if threads > 1 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .thread_name(|i| format!("arc-ecc-{i}"))
                    .build()
                    .map_err(|e| EccError::InvalidConfig(format!("thread pool: {e}")))?,
            )
        } else {
            None
        };
        Ok(ParallelCodec { config, chunk_size, threads, pool })
    }

    /// The configuration this codec runs.
    pub fn config(&self) -> &S {
        &self.config
    }

    /// Worker threads in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk granularity in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Total encoded length for `data_len` input bytes.
    pub fn encoded_len(&self, data_len: usize) -> usize {
        data_len + self.total_parity_len(data_len)
    }

    fn total_parity_len(&self, data_len: usize) -> usize {
        let full = data_len / self.chunk_size;
        let tail = data_len % self.chunk_size;
        let mut total = full * self.config.parity_len(self.chunk_size);
        if tail > 0 {
            total += self.config.parity_len(tail);
        }
        total
    }

    /// Per-chunk parity lengths, in chunk order.
    fn parity_lens(&self, data_len: usize) -> Vec<usize> {
        let mut lens = Vec::with_capacity(data_len.div_ceil(self.chunk_size).max(1));
        let mut remaining = data_len;
        while remaining > 0 {
            let c = remaining.min(self.chunk_size);
            lens.push(self.config.parity_len(c));
            remaining -= c;
        }
        lens
    }

    /// Encode `data`, returning `data ‖ parity regions`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let parity_lens = self.parity_lens(data.len());
        let total_parity: usize = parity_lens.iter().sum();
        let mut out = Vec::with_capacity(data.len() + total_parity);
        out.extend_from_slice(data);
        out.resize(data.len() + total_parity, 0);
        let (_, parity_all) = out.split_at_mut(data.len());
        let mut jobs: Vec<(&[u8], &mut [u8])> = Vec::with_capacity(parity_lens.len());
        let mut parity_rest = parity_all;
        for (chunk, &plen) in data.chunks(self.chunk_size).zip(&parity_lens) {
            let (p, rest) = parity_rest.split_at_mut(plen);
            parity_rest = rest;
            jobs.push((chunk, p));
        }
        let run = |jobs: &mut Vec<(&[u8], &mut [u8])>| {
            jobs.par_iter_mut().for_each(|(chunk, parity)| {
                let p = self.config.encode_parity(chunk);
                parity.copy_from_slice(&p);
            });
        };
        match &self.pool {
            Some(pool) => pool.install(|| run(&mut jobs)),
            None => {
                for (chunk, parity) in &mut jobs {
                    parity.copy_from_slice(&self.config.encode_parity(chunk));
                }
            }
        }
        out
    }

    /// Decode an encoded buffer, verifying and repairing every chunk.
    ///
    /// `data_len` is the original input length (persisted by ARC's
    /// container). Returns the repaired data and a merged report, or the
    /// first uncorrectable chunk's error.
    pub fn decode(
        &self,
        encoded: &[u8],
        data_len: usize,
    ) -> Result<(Vec<u8>, CorrectionReport), EccError> {
        let expected = self.encoded_len(data_len);
        if encoded.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "parallel codec: encoded length {} != expected {expected}",
                    encoded.len()
                ),
            });
        }
        let mut buf = encoded.to_vec();
        let (data_all, parity_all) = buf.split_at_mut(data_len);
        let parity_lens = self.parity_lens(data_len);
        let mut jobs: Vec<(&mut [u8], &mut [u8])> = Vec::with_capacity(parity_lens.len());
        let mut parity_rest = parity_all;
        for (chunk, &plen) in data_all.chunks_mut(self.chunk_size).zip(&parity_lens) {
            let (p, rest) = parity_rest.split_at_mut(plen);
            parity_rest = rest;
            jobs.push((chunk, p));
        }
        let results: Vec<Result<CorrectionReport, EccError>> = match &self.pool {
            Some(pool) => pool.install(|| {
                jobs.par_iter_mut()
                    .map(|(chunk, parity)| self.config.verify_and_correct(chunk, parity))
                    .collect()
            }),
            None => jobs
                .iter_mut()
                .map(|(chunk, parity)| self.config.verify_and_correct(chunk, parity))
                .collect(),
        };
        let mut merged = CorrectionReport::default();
        for r in results {
            merged.merge(&r?);
        }
        buf.truncate(data_len);
        Ok((buf, merged))
    }
}

/// Measured throughput of one encode or decode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSample {
    /// Input bytes processed.
    pub bytes: usize,
    /// Wall-clock seconds elapsed.
    pub seconds: f64,
}

impl ThroughputSample {
    /// Throughput in MB/s (decimal MB, as the paper reports).
    pub fn mb_per_s(&self) -> f64 {
        if self.seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.bytes as f64 / 1e6 / self.seconds
    }
}

/// Encode while timing; used by ARC's training phase and the Fig 8 harness.
pub fn timed_encode<S: EccScheme>(codec: &ParallelCodec<S>, data: &[u8]) -> (Vec<u8>, ThroughputSample) {
    let t0 = std::time::Instant::now();
    let out = codec.encode(data);
    let sample = ThroughputSample { bytes: data.len(), seconds: t0.elapsed().as_secs_f64() };
    (out, sample)
}

/// Decode while timing; used by ARC's training phase and the Fig 9 harness.
pub fn timed_decode<S: EccScheme>(
    codec: &ParallelCodec<S>,
    encoded: &[u8],
    data_len: usize,
) -> Result<(Vec<u8>, CorrectionReport, ThroughputSample), EccError> {
    let t0 = std::time::Instant::now();
    let (out, report) = codec.decode(encoded, data_len)?;
    let sample = ThroughputSample { bytes: data_len, seconds: t0.elapsed().as_secs_f64() };
    Ok((out, report, sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 31 + i / 7) % 256) as u8).collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        let cfg = EccConfig::hamming(true);
        assert!(ParallelCodec::new(cfg, 0).is_err());
        assert!(ParallelCodec::with_chunk_size(cfg, 1, 0).is_err());
    }

    #[test]
    fn round_trip_all_schemes_sequential_and_parallel() {
        let configs = [
            EccConfig::parity(8).unwrap(),
            EccConfig::hamming(false),
            EccConfig::hamming(true),
            EccConfig::secded(false),
            EccConfig::secded(true),
            EccConfig::rs(16, 4).unwrap(),
        ];
        let data = sample(300_000);
        for cfg in configs {
            for threads in [1usize, 4] {
                let codec = ParallelCodec::with_chunk_size(cfg, threads, 64 * 1024).unwrap();
                let enc = codec.encode(&data);
                assert_eq!(enc.len(), codec.encoded_len(data.len()));
                let (out, report) = codec.decode(&enc, data.len()).unwrap();
                assert_eq!(out, data, "{cfg} threads={threads}");
                assert!(report.is_clean());
            }
        }
    }

    #[test]
    fn parallel_output_is_identical_to_sequential() {
        let data = sample(500_000);
        for cfg in [EccConfig::secded(true), EccConfig::rs(32, 8).unwrap()] {
            let seq = ParallelCodec::with_chunk_size(cfg, 1, 100_000).unwrap();
            let par = ParallelCodec::with_chunk_size(cfg, 8, 100_000).unwrap();
            assert_eq!(seq.encode(&data), par.encode(&data), "{cfg}");
        }
    }

    #[test]
    fn corrects_one_flip_per_chunk() {
        let cfg = EccConfig::secded(true);
        let codec = ParallelCodec::with_chunk_size(cfg, 4, 10_000).unwrap();
        let data = sample(100_000);
        let mut enc = codec.encode(&data);
        for i in 0..10u64 {
            flip_bit(&mut enc, i * 10_000 * 8 + i * 64);
        }
        let (out, report) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_bits, 10);
    }

    #[test]
    fn uncorrectable_chunk_fails_whole_decode() {
        let cfg = EccConfig::parity(8).unwrap();
        let codec = ParallelCodec::with_chunk_size(cfg, 2, 1000).unwrap();
        let data = sample(5000);
        let mut enc = codec.encode(&data);
        flip_bit(&mut enc, 12345);
        assert!(matches!(
            codec.decode(&enc, data.len()),
            Err(EccError::Uncorrectable { .. })
        ));
    }

    #[test]
    fn length_mismatch_is_malformed() {
        let cfg = EccConfig::hamming(true);
        let codec = ParallelCodec::new(cfg, 1).unwrap();
        let data = sample(1000);
        let enc = codec.encode(&data);
        assert!(matches!(
            codec.decode(&enc[..enc.len() - 1], data.len()),
            Err(EccError::Malformed { .. })
        ));
    }

    #[test]
    fn rs_chunk_independence_bounds_burst_damage() {
        // A burst confined to one chunk never affects other chunks.
        let cfg = EccConfig::rs(16, 4).unwrap();
        let codec = ParallelCodec::with_chunk_size(cfg, 2, 4096).unwrap();
        let data = sample(16 * 4096);
        let mut enc = codec.encode(&data);
        // Destroy 1/5 of chunk 3's data (within m/k tolerance of that chunk).
        let start = 3 * 4096;
        for b in &mut enc[start..start + 4096 / 5] {
            *b = 0xDD;
        }
        let (out, report) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_devices >= 1);
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = ParallelCodec::new(EccConfig::secded(true), 2).unwrap();
        let enc = codec.encode(&[]);
        assert!(enc.is_empty());
        let (out, _) = codec.decode(&enc, 0).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn tail_chunk_smaller_than_chunk_size() {
        let cfg = EccConfig::hamming(false);
        let codec = ParallelCodec::with_chunk_size(cfg, 3, 999).unwrap();
        let data = sample(999 * 4 + 123);
        let enc = codec.encode(&data);
        let (out, _) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn throughput_sample_math() {
        let s = ThroughputSample { bytes: 2_000_000, seconds: 0.5 };
        assert!((s.mb_per_s() - 4.0).abs() < 1e-9);
        let z = ThroughputSample { bytes: 1, seconds: 0.0 };
        assert!(z.mb_per_s().is_infinite());
    }
}
