//! Chunk-parallel ECC encoding/decoding with explicit thread counts.
//!
//! The paper parallelizes every ECC method with OpenMP and caps resource use
//! at the thread count given to `arc_init()` (§5.1). This module is the Rust
//! equivalent: input is split into fixed-size chunks, each chunk is encoded
//! or verified independently on a dedicated rayon thread pool whose size the
//! caller controls, and per-chunk correction reports are merged.
//!
//! Encoded layout: `data ‖ parity₀ ‖ parity₁ ‖ …` — chunk parity regions
//! follow the (unmodified) data in order. Because every scheme's parity
//! length is a pure function of the chunk length, offsets are computable on
//! both sides without per-chunk headers, keeping overhead at exactly the
//! scheme's own rate.
//!
//! The data path is zero-copy scatter-write: [`ParallelCodec::encode_into`]
//! carves a caller-provided buffer into disjoint `&mut [u8]` regions (one
//! data chunk and one parity region per chunk) and each worker writes its
//! regions in place via [`EccScheme::encode_parity_into`] — no per-chunk
//! allocation and no concatenation pass. [`ParallelCodec::encode`] is a thin
//! wrapper that makes exactly one heap allocation for the whole container.
//! On the read side [`ParallelCodec::decode_in_place`] verifies and repairs
//! the payload where it lies; a clean decode copies nothing.

use rayon::prelude::*;

use crate::codec::{CorrectionReport, EccError, EccScheme};
use crate::config::EccConfig;

/// Default chunk size (1 MiB): large enough to amortize dispatch, small
/// enough that a 26 MB CESM buffer spreads across 26+ threads.
pub const DEFAULT_CHUNK_SIZE: usize = 1 << 20;

/// Thread-count sentinel: `0` means "use every available hardware thread".
///
/// Every ARC entry point that takes a `threads: usize` accepts this value;
/// it is resolved exactly once, in [`ParallelCodec::with_chunk_size`], via
/// [`std::thread::available_parallelism`]. Passing an explicit `n >= 1`
/// always means exactly `n` workers.
pub const ANY_THREADS: usize = 0;

/// Resolve a caller-supplied thread count: [`ANY_THREADS`] becomes the
/// machine's available parallelism (or 1 if that cannot be determined).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == ANY_THREADS {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// A chunk-parallel codec for one ECC scheme at a fixed thread count.
///
/// Generic over the scheme so both the built-in [`EccConfig`] space and
/// custom schemes registered through ARC's extension API (boxed
/// `Arc<dyn EccScheme>`) get identical chunking and thread semantics.
pub struct ParallelCodec<S: EccScheme = EccConfig> {
    config: S,
    chunk_size: usize,
    threads: usize,
    pool: Option<rayon::ThreadPool>,
}

impl<S: EccScheme + std::fmt::Debug> std::fmt::Debug for ParallelCodec<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelCodec")
            .field("config", &self.config)
            .field("chunk_size", &self.chunk_size)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<S: EccScheme> ParallelCodec<S> {
    /// Create a codec running on `threads` worker threads (1 = in-line
    /// sequential execution, no pool is spawned; [`ANY_THREADS`] = all
    /// available hardware threads).
    pub fn new(config: S, threads: usize) -> Result<ParallelCodec<S>, EccError> {
        Self::with_chunk_size(config, threads, DEFAULT_CHUNK_SIZE)
    }

    /// As [`ParallelCodec::new`] with an explicit chunk size.
    ///
    /// This is the single choke point where [`ANY_THREADS`] is resolved to a
    /// concrete worker count; [`ParallelCodec::threads`] always reports the
    /// resolved value.
    pub fn with_chunk_size(
        config: S,
        threads: usize,
        chunk_size: usize,
    ) -> Result<ParallelCodec<S>, EccError> {
        let threads = resolve_threads(threads);
        if chunk_size == 0 {
            return Err(EccError::InvalidConfig("chunk size must be >= 1".into()));
        }
        // Thread fan-out distribution: one sample per codec construction.
        arc_telemetry::histogram_record("ecc.codec.threads", threads as u64);
        // Build the lazily-initialized GF lookup tables before any worker
        // touches them: keeps the one-time build out of the timed hot loops
        // and out of the per-chunk allocation budget.
        crate::gf256::warm_tables();
        let pool = if threads > 1 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .thread_name(|i| format!("arc-ecc-{i}"))
                    .build()
                    .map_err(|e| EccError::InvalidConfig(format!("thread pool: {e}")))?,
            )
        } else {
            None
        };
        Ok(ParallelCodec { config, chunk_size, threads, pool })
    }

    /// The configuration this codec runs.
    pub fn config(&self) -> &S {
        &self.config
    }

    /// Worker threads in use (always ≥ 1; [`ANY_THREADS`] has been resolved).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk granularity in bytes.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Workers actually worth dispatching for `data_len` input bytes.
    ///
    /// The minimum-bytes-per-thread floor ([`EccScheme::min_bytes_per_thread`])
    /// clamps the configured thread count so each worker gets enough work to
    /// amortize thread dispatch; small jobs collapse to 1 and bypass the pool
    /// entirely. This is what fixed the measured 2-thread throughput
    /// *regression* for the fast schemes (see DESIGN.md §13).
    pub fn effective_workers(&self, data_len: usize) -> usize {
        if self.threads <= 1 {
            return 1;
        }
        let floor = self.config.min_bytes_per_thread().max(1);
        self.threads.min(data_len / floor).max(1)
    }

    /// The pool to dispatch on, if parallelism is worth it for this length.
    fn pool_for(&self, data_len: usize) -> Option<&rayon::ThreadPool> {
        let workers = self.effective_workers(data_len);
        arc_telemetry::histogram_record("ecc.codec.effective_workers", workers as u64);
        if workers > 1 {
            self.pool.as_ref()
        } else {
            if self.pool.is_some() {
                arc_telemetry::counter_add("ecc.codec.pool_bypassed", 1);
            }
            None
        }
    }

    /// Total encoded length for `data_len` input bytes.
    pub fn encoded_len(&self, data_len: usize) -> usize {
        data_len + self.total_parity_len(data_len)
    }

    fn total_parity_len(&self, data_len: usize) -> usize {
        let full = data_len / self.chunk_size;
        let tail = data_len % self.chunk_size;
        let mut total = full * self.config.parity_len(self.chunk_size);
        if tail > 0 {
            total += self.config.parity_len(tail);
        }
        total
    }

    /// Scatter-write `data ‖ parity regions` into `out`, which must be
    /// exactly [`ParallelCodec::encoded_len`] bytes. `out` may hold
    /// arbitrary garbage; every byte is overwritten.
    ///
    /// On the sequential path (1 thread) this performs no heap allocation;
    /// with a pool, workers write their disjoint regions concurrently and
    /// only the job list itself is allocated.
    pub fn encode_into(&self, data: &[u8], out: &mut [u8]) {
        let _span = arc_telemetry::span("ecc.encode");
        arc_telemetry::counter_add("ecc.encode.bytes", data.len() as u64);
        arc_telemetry::counter_add(
            "ecc.encode.chunks_submitted",
            data.len().div_ceil(self.chunk_size) as u64,
        );
        let expected = self.encoded_len(data.len());
        assert_eq!(out.len(), expected, "encode_into: output buffer size mismatch");
        let (data_out, parity_all) = out.split_at_mut(data.len());
        match self.pool_for(data.len()) {
            Some(pool) => {
                let mut jobs: Vec<(&[u8], &mut [u8], &mut [u8])> =
                    Vec::with_capacity(data.len().div_ceil(self.chunk_size));
                let mut data_rest = data_out;
                let mut parity_rest = parity_all;
                for chunk in data.chunks(self.chunk_size) {
                    let (d, rest) = data_rest.split_at_mut(chunk.len());
                    data_rest = rest;
                    let (p, rest) = parity_rest.split_at_mut(self.config.parity_len(chunk.len()));
                    parity_rest = rest;
                    jobs.push((chunk, d, p));
                }
                pool.install(|| {
                    jobs.par_iter_mut().for_each(|(src, dst, parity)| {
                        let t = arc_telemetry::Stopwatch::start();
                        dst.copy_from_slice(src);
                        self.config.encode_parity_into(src, parity);
                        arc_telemetry::histogram_record("ecc.encode.chunk_ns", t.elapsed_ns());
                        arc_telemetry::counter_add("ecc.encode.chunks_done", 1);
                    });
                });
            }
            None => {
                data_out.copy_from_slice(data);
                let mut parity_rest = parity_all;
                for chunk in data.chunks(self.chunk_size) {
                    let (p, rest) = parity_rest.split_at_mut(self.config.parity_len(chunk.len()));
                    parity_rest = rest;
                    let t = arc_telemetry::Stopwatch::start();
                    self.config.encode_parity_into(chunk, p);
                    arc_telemetry::histogram_record("ecc.encode.chunk_ns", t.elapsed_ns());
                    arc_telemetry::counter_add("ecc.encode.chunks_done", 1);
                }
            }
        }
    }

    /// Encode `data`, returning `data ‖ parity regions`.
    ///
    /// Makes exactly one heap allocation — the returned container — and
    /// scatter-writes into it via [`ParallelCodec::encode_into`].
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.encoded_len(data.len())];
        self.encode_into(data, &mut out);
        out
    }

    /// Total encoded length when `data_len` input bytes are split into
    /// independently encoded `shard_size`-byte shards: the sum of
    /// [`ParallelCodec::encoded_len`] over every shard. A `shard_size` of
    /// 0 yields 0 (the sharded encode entry points reject it properly).
    pub fn sharded_encoded_len(&self, data_len: usize, shard_size: usize) -> usize {
        if shard_size == 0 {
            return 0;
        }
        let full = data_len / shard_size;
        let tail = data_len % shard_size;
        let mut total = full * self.encoded_len(shard_size);
        if tail > 0 {
            total += self.encoded_len(tail);
        }
        total
    }

    /// Scatter-write the sharded encoding `shard₀ ‖ shard₁ ‖ …` into
    /// `out`, where each shard region is that shard's own
    /// `data ‖ parity regions` layout — i.e. each `shard_size`-byte slice
    /// of `data` is encoded exactly as [`ParallelCodec::encode_into`]
    /// would encode it alone, making every shard independently decodable
    /// via [`ParallelCodec::decode_shard_in_place`].
    ///
    /// `out` must be exactly [`ParallelCodec::sharded_encoded_len`] bytes.
    /// Chunk jobs are flattened across *all* shards into one pool pass,
    /// so small shards don't serialize the workers.
    pub fn encode_sharded_into(
        &self,
        data: &[u8],
        shard_size: usize,
        out: &mut [u8],
    ) -> Result<(), EccError> {
        let _span = arc_telemetry::span("ecc.encode_sharded");
        if shard_size == 0 {
            return Err(EccError::InvalidConfig("shard size must be >= 1".into()));
        }
        let expected = self.sharded_encoded_len(data.len(), shard_size);
        if out.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "encode_sharded_into: output buffer {} bytes != expected {expected}",
                    out.len()
                ),
            });
        }
        arc_telemetry::counter_add("ecc.encode.bytes", data.len() as u64);
        arc_telemetry::counter_add("ecc.encode.shards", data.len().div_ceil(shard_size) as u64);
        // Carve per-shard regions, then per-chunk jobs within each shard;
        // all jobs land in one flat list driven by a single pool pass.
        let mut jobs: Vec<(&[u8], &mut [u8], &mut [u8])> = Vec::new();
        let mut out_rest = out;
        for shard in data.chunks(shard_size) {
            let (region, rest) = out_rest.split_at_mut(self.encoded_len(shard.len()));
            out_rest = rest;
            let (mut data_rest, mut parity_rest) = region.split_at_mut(shard.len());
            for chunk in shard.chunks(self.chunk_size) {
                let (d, rest) = data_rest.split_at_mut(chunk.len());
                data_rest = rest;
                let (p, rest) = parity_rest.split_at_mut(self.config.parity_len(chunk.len()));
                parity_rest = rest;
                jobs.push((chunk, d, p));
            }
        }
        let run = |(src, dst, parity): &mut (&[u8], &mut [u8], &mut [u8])| {
            let t = arc_telemetry::Stopwatch::start();
            dst.copy_from_slice(src);
            self.config.encode_parity_into(src, parity);
            arc_telemetry::histogram_record("ecc.encode.chunk_ns", t.elapsed_ns());
            arc_telemetry::counter_add("ecc.encode.chunks_done", 1);
        };
        match self.pool_for(data.len()) {
            Some(pool) => pool.install(|| jobs.par_iter_mut().for_each(run)),
            None => jobs.iter_mut().for_each(run),
        }
        Ok(())
    }

    /// Verify and repair ONE shard's encoded region in place.
    ///
    /// `shard` is exactly the region [`ParallelCodec::encode_sharded_into`]
    /// wrote for this shard (`data ‖ parity`), and `decoded_len` its
    /// original length; on success the first `decoded_len` bytes are the
    /// repaired data. This is the random-access primitive: the cost is
    /// proportional to the shard, never the container.
    pub fn decode_shard_in_place(
        &self,
        shard: &mut [u8],
        decoded_len: usize,
    ) -> Result<CorrectionReport, EccError> {
        arc_telemetry::counter_add("ecc.decode.shards", 1);
        self.decode_in_place(shard, decoded_len)
    }

    /// Verify and repair an encoded buffer in place.
    ///
    /// `data_len` is the original input length (persisted by ARC's
    /// container). On success the first `data_len` bytes of `encoded` are
    /// the repaired data; a clean pass leaves the buffer untouched and, on
    /// the sequential path, performs no full-buffer copy and no allocation
    /// for the schemes whose verify paths are allocation-free.
    ///
    /// On error the buffer contents are unspecified (chunks preceding the
    /// failed one may already have been repaired).
    pub fn decode_in_place(
        &self,
        encoded: &mut [u8],
        data_len: usize,
    ) -> Result<CorrectionReport, EccError> {
        let _span = arc_telemetry::span("ecc.decode");
        arc_telemetry::counter_add("ecc.decode.bytes", data_len as u64);
        arc_telemetry::counter_add(
            "ecc.decode.chunks_submitted",
            data_len.div_ceil(self.chunk_size) as u64,
        );
        let expected = self.encoded_len(data_len);
        if encoded.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "parallel codec: encoded length {} != expected {expected}",
                    encoded.len()
                ),
            });
        }
        let (data_all, parity_all) = encoded.split_at_mut(data_len);
        let merged = match self.pool_for(data_len) {
            Some(pool) => {
                let mut jobs: Vec<(&mut [u8], &mut [u8])> =
                    // arc-lint: bounded(chunk count of a buffer already held in memory)
                    Vec::with_capacity(data_len.div_ceil(self.chunk_size));
                let mut parity_rest = parity_all;
                for chunk in data_all.chunks_mut(self.chunk_size) {
                    let (p, rest) = parity_rest.split_at_mut(self.config.parity_len(chunk.len()));
                    parity_rest = rest;
                    jobs.push((chunk, p));
                }
                let results: Vec<Result<CorrectionReport, EccError>> = pool.install(|| {
                    jobs.par_iter_mut()
                        .map(|(chunk, parity)| {
                            let t = arc_telemetry::Stopwatch::start();
                            let r = self.config.verify_and_correct(chunk, parity);
                            arc_telemetry::histogram_record("ecc.decode.chunk_ns", t.elapsed_ns());
                            arc_telemetry::counter_add("ecc.decode.chunks_done", 1);
                            r
                        })
                        .collect()
                });
                let mut merged = CorrectionReport::default();
                for r in results {
                    merged.merge(&r?);
                }
                merged
            }
            None => {
                let mut merged = CorrectionReport::default();
                let mut parity_rest = parity_all;
                for chunk in data_all.chunks_mut(self.chunk_size) {
                    let (p, rest) = parity_rest.split_at_mut(self.config.parity_len(chunk.len()));
                    parity_rest = rest;
                    let t = arc_telemetry::Stopwatch::start();
                    let r = self.config.verify_and_correct(chunk, p);
                    arc_telemetry::histogram_record("ecc.decode.chunk_ns", t.elapsed_ns());
                    arc_telemetry::counter_add("ecc.decode.chunks_done", 1);
                    merged.merge(&r?);
                }
                merged
            }
        };
        arc_telemetry::counter_add("ecc.decode.corrected_bits", merged.corrected_bits);
        arc_telemetry::counter_add("ecc.decode.corrected_devices", merged.corrected_devices);
        Ok(merged)
    }

    /// Decode an encoded buffer, verifying and repairing every chunk.
    ///
    /// Borrowing convenience wrapper over
    /// [`ParallelCodec::decode_in_place`]: copies `encoded` once into the
    /// returned buffer, repairs it in place, and truncates to the data.
    /// Returns the repaired data and a merged report, or the first
    /// uncorrectable chunk's error.
    pub fn decode(
        &self,
        encoded: &[u8],
        data_len: usize,
    ) -> Result<(Vec<u8>, CorrectionReport), EccError> {
        let mut buf = encoded.to_vec();
        let report = self.decode_in_place(&mut buf, data_len)?;
        buf.truncate(data_len);
        Ok((buf, report))
    }
}

/// Measured throughput of one encode or decode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputSample {
    /// Input bytes processed.
    pub bytes: usize,
    /// Wall-clock seconds elapsed.
    pub seconds: f64,
}

impl ThroughputSample {
    /// Throughput in MB/s (decimal MB, as the paper reports).
    pub fn mb_per_s(&self) -> f64 {
        if self.seconds <= 0.0 {
            return f64::INFINITY;
        }
        self.bytes as f64 / 1e6 / self.seconds
    }
}

/// Encode while timing; used by ARC's training phase and the Fig 8 harness.
///
/// Times the real single-allocation scatter-write path, so TrainingTable
/// throughput reflects what [`ParallelCodec::encode`] actually does.
pub fn timed_encode<S: EccScheme>(
    codec: &ParallelCodec<S>,
    data: &[u8],
) -> (Vec<u8>, ThroughputSample) {
    let t0 = std::time::Instant::now();
    let out = codec.encode(data);
    let sample = ThroughputSample { bytes: data.len(), seconds: t0.elapsed().as_secs_f64() };
    (out, sample)
}

/// Decode while timing; used by ARC's training phase and the Fig 9 harness.
pub fn timed_decode<S: EccScheme>(
    codec: &ParallelCodec<S>,
    encoded: &[u8],
    data_len: usize,
) -> Result<(Vec<u8>, CorrectionReport, ThroughputSample), EccError> {
    let t0 = std::time::Instant::now();
    let (out, report) = codec.decode(encoded, data_len)?;
    let sample = ThroughputSample { bytes: data_len, seconds: t0.elapsed().as_secs_f64() };
    Ok((out, report, sample))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 31 + i / 7) % 256) as u8).collect()
    }

    #[test]
    fn rejects_bad_parameters() {
        let cfg = EccConfig::hamming(true);
        assert!(ParallelCodec::with_chunk_size(cfg, 1, 0).is_err());
    }

    #[test]
    fn any_threads_resolves_to_available_parallelism() {
        let cfg = EccConfig::hamming(true);
        let codec = ParallelCodec::new(cfg, ANY_THREADS).unwrap();
        assert!(codec.threads() >= 1);
        let expect = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(codec.threads(), expect);
        // And the codec actually works at the resolved count.
        let data = sample(10_000);
        let enc = codec.encode(&data);
        let (out, _) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn encode_into_overwrites_garbage_and_matches_encode() {
        let data = sample(70_000);
        for cfg in
            [EccConfig::parity(4).unwrap(), EccConfig::secded(true), EccConfig::rs(16, 4).unwrap()]
        {
            for threads in [1usize, 4] {
                let codec = ParallelCodec::with_chunk_size(cfg, threads, 16 * 1024).unwrap();
                let reference = codec.encode(&data);
                let mut out = vec![0xA5u8; codec.encoded_len(data.len())];
                codec.encode_into(&data, &mut out);
                assert_eq!(out, reference, "{cfg} threads={threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "output buffer size mismatch")]
    fn encode_into_rejects_wrong_buffer_size() {
        let codec = ParallelCodec::new(EccConfig::hamming(false), 1).unwrap();
        let data = sample(100);
        let mut out = vec![0u8; codec.encoded_len(data.len()) - 1];
        codec.encode_into(&data, &mut out);
    }

    #[test]
    fn decode_in_place_repairs_without_moving_data() {
        let cfg = EccConfig::secded(true);
        let codec = ParallelCodec::with_chunk_size(cfg, 2, 8 * 1024).unwrap();
        let data = sample(50_000);
        let mut enc = codec.encode(&data);
        flip_bit(&mut enc, 4242);
        let report = codec.decode_in_place(&mut enc, data.len()).unwrap();
        assert_eq!(report.corrected_bits, 1);
        assert_eq!(&enc[..data.len()], &data[..]);
    }

    #[test]
    fn round_trip_all_schemes_sequential_and_parallel() {
        let configs = [
            EccConfig::parity(8).unwrap(),
            EccConfig::hamming(false),
            EccConfig::hamming(true),
            EccConfig::secded(false),
            EccConfig::secded(true),
            EccConfig::rs(16, 4).unwrap(),
        ];
        let data = sample(300_000);
        for cfg in configs {
            for threads in [1usize, 4] {
                let codec = ParallelCodec::with_chunk_size(cfg, threads, 64 * 1024).unwrap();
                let enc = codec.encode(&data);
                assert_eq!(enc.len(), codec.encoded_len(data.len()));
                let (out, report) = codec.decode(&enc, data.len()).unwrap();
                assert_eq!(out, data, "{cfg} threads={threads}");
                assert!(report.is_clean());
            }
        }
    }

    #[test]
    fn parallel_output_is_identical_to_sequential() {
        let data = sample(500_000);
        for cfg in [EccConfig::secded(true), EccConfig::rs(32, 8).unwrap()] {
            let seq = ParallelCodec::with_chunk_size(cfg, 1, 100_000).unwrap();
            let par = ParallelCodec::with_chunk_size(cfg, 8, 100_000).unwrap();
            assert_eq!(seq.encode(&data), par.encode(&data), "{cfg}");
        }
    }

    #[test]
    fn corrects_one_flip_per_chunk() {
        let cfg = EccConfig::secded(true);
        let codec = ParallelCodec::with_chunk_size(cfg, 4, 10_000).unwrap();
        let data = sample(100_000);
        let mut enc = codec.encode(&data);
        for i in 0..10u64 {
            flip_bit(&mut enc, i * 10_000 * 8 + i * 64);
        }
        let (out, report) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_bits, 10);
    }

    #[test]
    fn uncorrectable_chunk_fails_whole_decode() {
        let cfg = EccConfig::parity(8).unwrap();
        let codec = ParallelCodec::with_chunk_size(cfg, 2, 1000).unwrap();
        let data = sample(5000);
        let mut enc = codec.encode(&data);
        flip_bit(&mut enc, 12345);
        assert!(matches!(codec.decode(&enc, data.len()), Err(EccError::Uncorrectable { .. })));
    }

    #[test]
    fn length_mismatch_is_malformed() {
        let cfg = EccConfig::hamming(true);
        let codec = ParallelCodec::new(cfg, 1).unwrap();
        let data = sample(1000);
        let enc = codec.encode(&data);
        assert!(matches!(
            codec.decode(&enc[..enc.len() - 1], data.len()),
            Err(EccError::Malformed { .. })
        ));
    }

    #[test]
    fn rs_chunk_independence_bounds_burst_damage() {
        // A burst confined to one chunk never affects other chunks.
        let cfg = EccConfig::rs(16, 4).unwrap();
        let codec = ParallelCodec::with_chunk_size(cfg, 2, 4096).unwrap();
        let data = sample(16 * 4096);
        let mut enc = codec.encode(&data);
        // Destroy 1/5 of chunk 3's data (within m/k tolerance of that chunk).
        let start = 3 * 4096;
        for b in &mut enc[start..start + 4096 / 5] {
            *b = 0xDD;
        }
        let (out, report) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_devices >= 1);
    }

    #[test]
    fn empty_input_round_trips() {
        let codec = ParallelCodec::new(EccConfig::secded(true), 2).unwrap();
        let enc = codec.encode(&[]);
        assert!(enc.is_empty());
        let (out, _) = codec.decode(&enc, 0).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn tail_chunk_smaller_than_chunk_size() {
        let cfg = EccConfig::hamming(false);
        let codec = ParallelCodec::with_chunk_size(cfg, 3, 999).unwrap();
        let data = sample(999 * 4 + 123);
        let enc = codec.encode(&data);
        let (out, _) = codec.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn sharded_encode_matches_per_shard_encode() {
        let data = sample(100_000);
        for cfg in
            [EccConfig::parity(4).unwrap(), EccConfig::secded(true), EccConfig::rs(16, 4).unwrap()]
        {
            for threads in [1usize, 4] {
                let codec = ParallelCodec::with_chunk_size(cfg, threads, 8 * 1024).unwrap();
                let shard_size = 24 * 1024;
                let total = codec.sharded_encoded_len(data.len(), shard_size);
                let mut out = vec![0x5Au8; total];
                codec.encode_sharded_into(&data, shard_size, &mut out).unwrap();
                // Every shard region equals the standalone encode of its slice.
                let mut pos = 0;
                for shard in data.chunks(shard_size) {
                    let elen = codec.encoded_len(shard.len());
                    assert_eq!(&out[pos..pos + elen], &codec.encode(shard)[..], "{cfg}");
                    pos += elen;
                }
                assert_eq!(pos, total);
            }
        }
    }

    #[test]
    fn decode_shard_in_place_repairs_one_shard() {
        let cfg = EccConfig::secded(true);
        let codec = ParallelCodec::with_chunk_size(cfg, 1, 4 * 1024).unwrap();
        let data = sample(40_000);
        let shard_size = 10_000;
        let mut enc = vec![0u8; codec.sharded_encoded_len(data.len(), shard_size)];
        codec.encode_sharded_into(&data, shard_size, &mut enc).unwrap();
        // Corrupt and repair shard 2 only.
        let elen = codec.encoded_len(shard_size);
        let region = &mut enc[2 * elen..3 * elen];
        flip_bit(region, 999);
        let report = codec.decode_shard_in_place(region, shard_size).unwrap();
        assert_eq!(report.corrected_bits, 1);
        assert_eq!(&region[..shard_size], &data[2 * shard_size..3 * shard_size]);
    }

    #[test]
    fn sharded_encode_rejects_bad_arguments() {
        let codec = ParallelCodec::new(EccConfig::hamming(true), 1).unwrap();
        let data = sample(1000);
        let mut out = vec![0u8; codec.sharded_encoded_len(data.len(), 100)];
        assert!(matches!(
            codec.encode_sharded_into(&data, 0, &mut out),
            Err(EccError::InvalidConfig(_))
        ));
        let mut short = vec![0u8; out.len() - 1];
        assert!(matches!(
            codec.encode_sharded_into(&data, 100, &mut short),
            Err(EccError::Malformed { .. })
        ));
    }

    #[test]
    fn sharded_empty_input_is_empty() {
        let codec = ParallelCodec::new(EccConfig::secded(true), 1).unwrap();
        assert_eq!(codec.sharded_encoded_len(0, 4096), 0);
        let mut out = vec![];
        codec.encode_sharded_into(&[], 4096, &mut out).unwrap();
    }

    #[test]
    fn effective_workers_respects_min_bytes_floor() {
        // RS floor is 1 MiB/worker; light schemes 4 MiB/worker.
        let rs = ParallelCodec::new(EccConfig::rs(16, 4).unwrap(), 4).unwrap();
        assert_eq!(rs.effective_workers(100_000), 1, "small job collapses to in-line");
        assert_eq!(rs.effective_workers(1 << 20), 1, "exactly one floor's worth");
        assert_eq!(rs.effective_workers(2 << 20), 2);
        assert_eq!(rs.effective_workers(100 << 20), 4, "clamped at configured threads");
        let ham = ParallelCodec::new(EccConfig::hamming(true), 2).unwrap();
        assert_eq!(ham.effective_workers(4 << 20), 1);
        assert_eq!(ham.effective_workers(8 << 20), 2);
        // Sequential codecs are unaffected.
        let seq = ParallelCodec::new(EccConfig::hamming(true), 1).unwrap();
        assert_eq!(seq.effective_workers(100 << 20), 1);
    }

    #[test]
    fn pool_path_round_trips_above_the_floor() {
        // Large enough that the pool is genuinely used (3 MiB / 1 MiB floor
        // = 3 workers for RS): the parallel output must match sequential
        // and repairs must still work chunk-locally.
        let cfg = EccConfig::rs(16, 4).unwrap();
        let par = ParallelCodec::with_chunk_size(cfg, 4, 256 * 1024).unwrap();
        assert_eq!(par.effective_workers(3 << 20), 3);
        let seq = ParallelCodec::with_chunk_size(cfg, 1, 256 * 1024).unwrap();
        let data = sample(3 << 20);
        let enc = par.encode(&data);
        assert_eq!(enc, seq.encode(&data));
        let mut bad = enc.clone();
        for b in &mut bad[5000..5000 + 2048] {
            *b = 0xEE;
        }
        let (out, report) = par.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_devices >= 1);
    }

    #[test]
    fn throughput_sample_math() {
        let s = ThroughputSample { bytes: 2_000_000, seconds: 0.5 };
        assert!((s.mb_per_s() - 4.0).abs() < 1e-9);
        let z = ThroughputSample { bytes: 1, seconds: 0.0 };
        assert!(z.mb_per_s().is_infinite());
    }
}
