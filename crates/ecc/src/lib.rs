//! # arc-ecc — error-correcting codes for ARC
//!
//! The ECC substrate of the ARC reproduction (HPDC '21): the four code
//! families the paper's engine exposes (§2.2, §5.2), implemented from
//! scratch, plus the chunk-parallel driver that gives each of them the
//! OpenMP-style thread scaling evaluated in Figures 8–10.
//!
//! * [`parity::Parity`] — single-bit even parity per block (detect-only).
//! * [`hamming::Hamming`] — SEC Hamming over 8- or 64-bit blocks.
//! * [`secded::SecDed`] — extended Hamming, single-correct double-detect.
//! * [`rs::ReedSolomon`] — device-oriented Reed-Solomon (the Jerasure
//!   substitution): CRC-located erasures over a Cauchy generator.
//! * [`rscode::RsCodeword`] — classical BCH-view RS with Berlekamp–Massey
//!   unknown-location decoding (container-header protection, ablations).
//!
//! Extension families for the `arc-core` registry (§7 future work):
//!
//! * [`rsblock::RsBlock`] — codeword-level RS as an [`codec::EccScheme`]:
//!   checksum-free unknown-location byte correction.
//! * [`interleaved::Interleaved`] — byte-lane interleaving around any inner
//!   scheme, turning bursts into per-codeword singles.
//! * [`bch::Bch`] — shortened binary BCH(8191, 8191−13t, t) over GF(2^13)
//!   for bit-rot at sub-percent overhead.
//! * [`uep::Uep`] — unequal error protection: strong head code over
//!   compressor metadata, light tail code over bit planes.
//! * [`parallel::ParallelCodec`] — chunked thread-parallel encode/decode at
//!   explicit thread counts.
//! * [`config::EccConfig`] — the serializable configuration space ARC's
//!   training phase measures and its optimizers search.
//!
//! ```
//! use arc_ecc::prelude::*;
//!
//! let data = vec![42u8; 1 << 16];
//! let codec = ParallelCodec::new(EccConfig::secded(true), 4).unwrap();
//! let mut encoded = codec.encode(&data);
//! encoded[100] ^= 0x04; // a soft error strikes
//! let (recovered, report) = codec.decode(&encoded, data.len()).unwrap();
//! assert_eq!(recovered, data);
//! assert_eq!(report.corrected_bits, 1);
//! ```

#![warn(missing_docs)]

pub mod bch;
pub mod bitmatrix;
pub mod bits;
pub mod codec;
pub mod config;
pub mod crc;
pub mod gf256;
pub mod hamming;
pub mod interleave;
pub mod interleaved;
pub mod parallel;
pub mod parity;
pub mod replication;
pub mod rs;
pub mod rsblock;
pub mod rscode;
pub mod schedule;
pub mod secded;
pub mod uep;

/// Convenient re-exports of the crate's primary types.
pub mod prelude {
    pub use crate::bch::Bch;
    pub use crate::codec::{Capability, CorrectionReport, EccError, EccScheme};
    pub use crate::config::{EccConfig, EccMethod};
    pub use crate::hamming::{BlockWidth, Hamming};
    pub use crate::interleave::InterleavedSecDed;
    pub use crate::interleaved::Interleaved;
    pub use crate::parallel::{ParallelCodec, ThroughputSample, ANY_THREADS, DEFAULT_CHUNK_SIZE};
    pub use crate::parity::Parity;
    pub use crate::replication::Replication;
    pub use crate::rs::ReedSolomon;
    pub use crate::rsblock::RsBlock;
    pub use crate::rscode::RsCodeword;
    pub use crate::secded::SecDed;
    pub use crate::uep::{uep_sz, uep_zfp, Uep};
}

pub use prelude::*;
