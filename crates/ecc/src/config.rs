//! The ECC configuration space ARC selects from.
//!
//! ARC's training phase (§5.1) measures every configuration of every ECC
//! method at every thread count; its optimizers then pick the configuration
//! whose storage overhead and throughput best satisfy the user's constraints.
//! [`EccConfig`] is the serializable description of one such configuration,
//! and [`EccConfig::standard_space`] enumerates the grid ARC trains by
//! default.

use crate::codec::{Capability, CorrectionReport, EccError, EccScheme};
use crate::hamming::{BlockWidth, Hamming};
use crate::parity::Parity;
use crate::rs::{ReedSolomon, MAX_DEVICES};
use crate::secded::SecDed;

/// One concrete, validated ECC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EccConfig {
    /// Even parity with the given number of data bytes per parity bit.
    Parity(Parity),
    /// Hamming SEC over 8- or 64-bit blocks.
    Hamming(Hamming),
    /// SEC-DED over 8- or 64-bit blocks.
    SecDed(SecDed),
    /// Reed-Solomon with `k` data devices and `m` code devices.
    Rs(ReedSolomon),
}

/// The four ECC method families, mirroring ARC's `ARC_PARITY`,
/// `ARC_HAMMING`, `ARC_SECDED`, and `ARC_RS` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccMethod {
    /// Single-bit even parity (detection only).
    Parity,
    /// Hamming single-error correction.
    Hamming,
    /// SEC-DED single-correct / double-detect.
    SecDed,
    /// Reed-Solomon multi-device correction.
    Rs,
}

impl EccMethod {
    /// All four methods in ascending protection order.
    pub const ALL: [EccMethod; 4] =
        [EccMethod::Parity, EccMethod::Hamming, EccMethod::SecDed, EccMethod::Rs];

    /// Stable name used in cache files and reports.
    pub fn name(self) -> &'static str {
        match self {
            EccMethod::Parity => "parity",
            EccMethod::Hamming => "hamming",
            EccMethod::SecDed => "secded",
            EccMethod::Rs => "rs",
        }
    }
}

impl EccConfig {
    /// Parity configuration helper.
    pub fn parity(bytes_per_parity_bit: usize) -> Result<EccConfig, EccError> {
        Ok(EccConfig::Parity(Parity::new(bytes_per_parity_bit)?))
    }

    /// Hamming configuration helper (`wide = true` → 64-bit blocks).
    pub fn hamming(wide: bool) -> EccConfig {
        EccConfig::Hamming(if wide { Hamming::w64() } else { Hamming::w8() })
    }

    /// SEC-DED configuration helper (`wide = true` → 64-bit blocks).
    pub fn secded(wide: bool) -> EccConfig {
        EccConfig::SecDed(if wide { SecDed::w64() } else { SecDed::w8() })
    }

    /// Reed-Solomon configuration helper.
    pub fn rs(k: usize, m: usize) -> Result<EccConfig, EccError> {
        Ok(EccConfig::Rs(ReedSolomon::new(k, m)?))
    }

    /// Which method family this configuration belongs to.
    pub fn method(&self) -> EccMethod {
        match self {
            EccConfig::Parity(_) => EccMethod::Parity,
            EccConfig::Hamming(_) => EccMethod::Hamming,
            EccConfig::SecDed(_) => EccMethod::SecDed,
            EccConfig::Rs(_) => EccMethod::Rs,
        }
    }

    fn as_scheme(&self) -> &dyn EccScheme {
        match self {
            EccConfig::Parity(s) => s,
            EccConfig::Hamming(s) => s,
            EccConfig::SecDed(s) => s,
            EccConfig::Rs(s) => s,
        }
    }

    /// Stable textual identifier, e.g. `parity:8`, `hamming:64`, `rs:213:42`.
    /// Round-trips through [`EccConfig::parse_id`]; used by the training
    /// cache.
    pub fn id(&self) -> String {
        match self {
            EccConfig::Parity(p) => format!("parity:{}", p.bytes_per_parity_bit),
            EccConfig::Hamming(h) => format!("hamming:{}", h.width.data_bits()),
            EccConfig::SecDed(s) => format!("secded:{}", s.width.data_bits()),
            EccConfig::Rs(r) => format!("rs:{}:{}", r.k, r.m),
        }
    }

    /// Parse an identifier produced by [`EccConfig::id`].
    pub fn parse_id(id: &str) -> Result<EccConfig, EccError> {
        let mut parts = id.split(':');
        let kind = parts.next().unwrap_or("");
        let bad = |d: &str| EccError::InvalidConfig(format!("cannot parse ECC id {id:?}: {d}"));
        let num = |p: Option<&str>, what: &str| -> Result<usize, EccError> {
            p.ok_or_else(|| bad(&format!("missing {what}")))?
                .parse::<usize>()
                .map_err(|_| bad(&format!("bad {what}")))
        };
        let cfg = match kind {
            "parity" => EccConfig::parity(num(parts.next(), "block size")?)?,
            "hamming" | "secded" => {
                let width = match num(parts.next(), "width")? {
                    8 => BlockWidth::W8,
                    64 => BlockWidth::W64,
                    w => return Err(bad(&format!("unsupported width {w}"))),
                };
                if kind == "hamming" {
                    EccConfig::Hamming(Hamming { width })
                } else {
                    EccConfig::SecDed(SecDed { width })
                }
            }
            "rs" => {
                let k = num(parts.next(), "k")?;
                let m = num(parts.next(), "m")?;
                EccConfig::rs(k, m)?
            }
            _ => return Err(bad("unknown method")),
        };
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        Ok(cfg)
    }

    /// The default configuration grid ARC trains (§5.1): eight parity block
    /// sizes, both Hamming widths, both SEC-DED widths, and Reed-Solomon
    /// points with `k + m = 255` covering storage overheads from ~1% to 100%.
    pub fn standard_space() -> Vec<EccConfig> {
        let mut out = Vec::new();
        for b in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            if let Ok(cfg) = EccConfig::parity(b) {
                out.push(cfg);
            }
        }
        out.push(EccConfig::hamming(false));
        out.push(EccConfig::hamming(true));
        out.push(EccConfig::secded(false));
        out.push(EccConfig::secded(true));
        // m = round(255·o / (1+o)) for a ladder of overhead targets o.
        let targets = [
            0.01, 0.02, 0.05, 0.08, 0.10, 0.125, 0.15, 0.175, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45,
            0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00,
        ];
        let mut last_m = 0usize;
        for o in targets {
            let m = ((MAX_DEVICES as f64 * o) / (1.0 + o)).round() as usize;
            let m = m.clamp(1, MAX_DEVICES - 1);
            if m == last_m {
                continue;
            }
            last_m = m;
            if let Ok(cfg) = EccConfig::rs(MAX_DEVICES - m, m) {
                out.push(cfg);
            }
        }
        out
    }
}

impl EccScheme for EccConfig {
    fn name(&self) -> &'static str {
        self.as_scheme().name()
    }

    fn parity_len(&self, data_len: usize) -> usize {
        self.as_scheme().parity_len(data_len)
    }

    fn storage_overhead(&self) -> f64 {
        self.as_scheme().storage_overhead()
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        self.as_scheme().encode_parity(data)
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        self.as_scheme().encode_parity_into(data, parity)
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        self.as_scheme().verify_and_correct(data, parity)
    }

    fn verify_and_correct_in_place(
        &self,
        encoded: &mut [u8],
        data_len: usize,
    ) -> Result<CorrectionReport, EccError> {
        self.as_scheme().verify_and_correct_in_place(encoded, data_len)
    }

    fn capability(&self) -> Capability {
        self.as_scheme().capability()
    }

    fn min_bytes_per_thread(&self) -> usize {
        self.as_scheme().min_bytes_per_thread()
    }
}

impl std::fmt::Display for EccConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips_for_whole_space() {
        for cfg in EccConfig::standard_space() {
            let id = cfg.id();
            let parsed = EccConfig::parse_id(&id).unwrap();
            assert_eq!(parsed, cfg, "{id}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "foo:1",
            "parity",
            "parity:0",
            "parity:x",
            "hamming:12",
            "rs:0:4",
            "rs:4",
            "parity:8:9",
            "rs:300:10",
        ] {
            assert!(EccConfig::parse_id(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn standard_space_covers_wide_overhead_range() {
        let space = EccConfig::standard_space();
        assert!(space.len() >= 30, "only {} configs", space.len());
        let overheads: Vec<f64> = space.iter().map(|c| c.storage_overhead()).collect();
        let min = overheads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = overheads.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.01, "min overhead {min}");
        assert!(max >= 0.9, "max overhead {max}");
        // Every method family represented.
        for m in EccMethod::ALL {
            assert!(space.iter().any(|c| c.method() == m), "{:?} missing", m);
        }
    }

    #[test]
    fn config_delegates_scheme_behaviour() {
        let cfg = EccConfig::secded(true);
        let data = vec![0x42u8; 256];
        let enc = cfg.encode(&data);
        let (out, report) = cfg.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.is_clean());
        assert_eq!(cfg.name(), "secded");
        assert_eq!(cfg.method(), EccMethod::SecDed);
    }

    #[test]
    fn rs_configs_in_space_sum_to_255() {
        for cfg in EccConfig::standard_space() {
            if let EccConfig::Rs(rs) = cfg {
                assert_eq!(rs.k + rs.m, MAX_DEVICES);
            }
        }
    }
}
