//! Bit-level helpers shared by the ECC codecs and the fault injector.
//!
//! All helpers address bits within a byte slice using a single linear bit
//! index. Bit `i` lives in byte `i / 8`; within a byte, bit 0 is the least
//! significant bit. This matches how the fault-injection study in the paper
//! indexes "bit 400,005 of the compressed data".

/// Total number of bits in a byte slice.
#[inline]
pub fn bit_len(bytes: &[u8]) -> u64 {
    bytes.len() as u64 * 8
}

/// Read bit `idx` of `bytes`.
///
/// # Panics
/// Panics if `idx` is out of range.
#[inline]
pub fn get_bit(bytes: &[u8], idx: u64) -> bool {
    let byte = bytes[(idx / 8) as usize];
    (byte >> (idx % 8)) & 1 == 1
}

/// Set bit `idx` of `bytes` to `value`.
///
/// # Panics
/// Panics if `idx` is out of range.
#[inline]
pub fn set_bit(bytes: &mut [u8], idx: u64, value: bool) {
    let b = &mut bytes[(idx / 8) as usize];
    let mask = 1u8 << (idx % 8);
    if value {
        *b |= mask;
    } else {
        *b &= !mask;
    }
}

/// Flip bit `idx` of `bytes` (the soft-error model used throughout).
///
/// # Panics
/// Panics if `idx` is out of range.
#[inline]
pub fn flip_bit(bytes: &mut [u8], idx: u64) {
    bytes[(idx / 8) as usize] ^= 1u8 << (idx % 8);
}

/// Population count of a byte slice (number of set bits).
#[inline]
pub fn popcount(bytes: &[u8]) -> u64 {
    bytes.iter().map(|b| b.count_ones() as u64).sum()
}

/// Number of bit positions at which two equal-length slices differ.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn hamming_distance(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "hamming_distance needs equal lengths");
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as u64).sum()
}

/// A fixed-destination bit packer that stores whole 64-bit words.
///
/// The ECC encoders emit one small (≤ 64-bit) parity group per block;
/// packing them through a u128 staging accumulator and flushing aligned
/// 8-byte words replaces the per-bit [`set_bit`] loop in the hot encode
/// paths. The writer covers its destination exactly: after `finish`, every
/// byte of `out` up to the packed bit length has been stored (trailing
/// padding bits of the final partial byte are zero), so callers need no
/// prior `fill(0)`.
#[derive(Debug)]
pub struct PackedBitWriter<'a> {
    out: &'a mut [u8],
    /// Staging bits; the low `nbits` are valid.
    acc: u128,
    nbits: u32,
    /// Next byte of `out` to store.
    byte: usize,
}

impl<'a> PackedBitWriter<'a> {
    /// Pack into `out`, starting at its first bit.
    pub fn new(out: &'a mut [u8]) -> Self {
        PackedBitWriter { out, acc: 0, nbits: 0, byte: 0 }
    }

    /// Append the low `n` bits of `value`, least-significant bit first.
    ///
    /// # Panics
    /// Panics (in debug) if `n > 64` or `value` has bits above `n`, and (in
    /// release, via slice indexing) if the packed bits overflow `out`.
    #[inline]
    pub fn push(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        debug_assert!(n == 64 || value < (1u64 << n));
        self.acc |= (value as u128) << self.nbits;
        self.nbits += n;
        if self.nbits >= 64 {
            self.out[self.byte..self.byte + 8].copy_from_slice(&(self.acc as u64).to_le_bytes());
            self.byte += 8;
            self.acc >>= 64;
            self.nbits -= 64;
        }
    }

    /// Flush the staged tail (if any) as `⌈nbits/8⌉` byte stores.
    pub fn finish(mut self) {
        let mut acc = self.acc as u64;
        let mut nbits = self.nbits;
        while nbits > 0 {
            self.out[self.byte] = acc as u8;
            self.byte += 1;
            acc >>= 8;
            nbits = nbits.saturating_sub(8);
        }
    }
}

/// Read the `n`-bit group starting at bit `idx` of `bytes` (LSB first) with
/// a single zero-padded word load — the decode-side counterpart of
/// [`PackedBitWriter`]. `n` must be ≤ 57 so the group fits one 8-byte
/// window at any bit offset.
///
/// # Panics
/// Panics (in debug) if `n > 57` or the group extends past the slice.
#[inline]
pub fn read_bits_at(bytes: &[u8], idx: u64, n: u32) -> u64 {
    debug_assert!(n <= 57);
    debug_assert!(idx + n as u64 <= bit_len(bytes));
    let byte = (idx / 8) as usize;
    let take = bytes.len().min(byte + 8) - byte;
    let mut w = [0u8; 8];
    w[..take].copy_from_slice(&bytes[byte..byte + take]);
    (u64::from_le_bytes(w) >> (idx % 8)) & ((1u64 << n) - 1)
}

/// A tightly-packed writer for sub-byte parity fields.
///
/// Hamming(12,8) produces 4 parity bits per data byte and SEC-DED(13,8)
/// produces 5; packing them avoids paying a whole byte per block.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `buf`.
    len: u64,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: u64) -> Self {
        BitWriter { buf: Vec::with_capacity(bits.div_ceil(8) as usize), len: 0 }
    }

    /// Append the low `n` bits of `value`, least-significant bit first.
    ///
    /// # Panics
    /// Panics if `n > 32`.
    pub fn write_bits(&mut self, value: u32, n: u32) {
        assert!(n <= 32);
        for i in 0..n {
            let bit = (value >> i) & 1 == 1;
            let byte_idx = (self.len / 8) as usize;
            if byte_idx == self.buf.len() {
                self.buf.push(0);
            }
            if bit {
                self.buf[byte_idx] |= 1 << (self.len % 8);
            }
            self.len += 1;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.len
    }

    /// Finish, returning the packed bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reader counterpart of [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Wrap a packed byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Read `n` bits (LSB first), returning them in the low bits of the result.
    ///
    /// # Panics
    /// Panics if fewer than `n` bits remain or `n > 32`.
    pub fn read_bits(&mut self, n: u32) -> u32 {
        assert!(n <= 32);
        assert!(self.pos + n as u64 <= bit_len(self.buf), "BitReader exhausted");
        let mut v = 0u32;
        for i in 0..n {
            if get_bit(self.buf, self.pos) {
                v |= 1 << i;
            }
            self.pos += 1;
        }
        v
    }

    /// Current read position in bits.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_flip_round_trip() {
        let mut v = vec![0u8; 4];
        set_bit(&mut v, 0, true);
        set_bit(&mut v, 9, true);
        set_bit(&mut v, 31, true);
        assert_eq!(v, [0b1, 0b10, 0, 0b1000_0000]);
        assert!(get_bit(&v, 9));
        assert!(!get_bit(&v, 8));
        flip_bit(&mut v, 9);
        assert!(!get_bit(&v, 9));
        flip_bit(&mut v, 9);
        assert!(get_bit(&v, 9));
    }

    #[test]
    fn popcount_counts() {
        assert_eq!(popcount(&[0xFF, 0x0F, 0x01]), 13);
        assert_eq!(popcount(&[]), 0);
    }

    #[test]
    fn hamming_distance_counts_flips() {
        let a = [0b1010_1010u8, 0xFF];
        let b = [0b1010_1000u8, 0x7F];
        assert_eq!(hamming_distance(&a, &b), 2);
    }

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        let fields: &[(u32, u32)] = &[(0b101, 3), (0x1F, 5), (0, 4), (0xABCD, 16), (1, 1)];
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        assert_eq!(w.bit_len(), 29);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read_bits(n), v);
        }
    }

    #[test]
    #[should_panic]
    fn bit_reader_panics_past_end() {
        let bytes = [0u8];
        let mut r = BitReader::new(&bytes);
        r.read_bits(9);
    }

    #[test]
    fn packed_writer_matches_per_bit_reference() {
        // Groups of every width 1..=8 across several total lengths, compared
        // bit-for-bit against a set_bit reference.
        for width in 1u32..=8 {
            for groups in [1usize, 7, 8, 9, 63, 64, 65, 200] {
                let total_bits = groups as u64 * width as u64;
                let len = total_bits.div_ceil(8) as usize;
                let value = |g: usize| ((g as u64 * 2654435761) >> 7) & ((1u64 << width) - 1);
                let mut reference = vec![0u8; len];
                for g in 0..groups {
                    let v = value(g);
                    for b in 0..width as u64 {
                        if (v >> b) & 1 == 1 {
                            set_bit(&mut reference, g as u64 * width as u64 + b, true);
                        }
                    }
                }
                let mut packed = vec![0xEEu8; len]; // must be fully overwritten
                let mut w = PackedBitWriter::new(&mut packed);
                for g in 0..groups {
                    w.push(value(g), width);
                }
                w.finish();
                assert_eq!(packed, reference, "width={width} groups={groups}");
                // And the word-wide reader round-trips every group.
                for g in 0..groups {
                    assert_eq!(
                        read_bits_at(&reference, g as u64 * width as u64, width),
                        value(g),
                        "width={width} group={g}"
                    );
                }
            }
        }
    }

    #[test]
    fn read_bits_at_handles_slice_tail() {
        let bytes = [0xFFu8, 0xA5];
        assert_eq!(read_bits_at(&bytes, 12, 4), 0xA);
        assert_eq!(read_bits_at(&bytes, 8, 8), 0xA5);
        assert_eq!(read_bits_at(&bytes, 15, 1), 1);
    }
}
