//! Block-interleaved codeword Reed-Solomon as an [`EccScheme`].
//!
//! [`crate::rscode::RsCodeword`] is the classical BCH-view RS codec: one
//! codeword, unknown-location correction via Berlekamp–Massey. This module
//! lifts it to the [`EccScheme`] contract so whole buffers can ride the
//! chunk-parallel driver: the data region is cut into messages of
//! `255 − nsym` bytes, each message gets its own `nsym`-byte parity block,
//! and the parity region is the concatenation of those blocks in order.
//!
//! Against ARC's built-in device-oriented RS (CRC-located erasures), this
//! trades throughput for *checksum-free* correction: up to ⌊nsym/2⌋
//! corrupted bytes per codeword are repaired with no side information at
//! all. It is the workhorse inner code of the extension families — the
//! burst-protection interleaver ([`crate::interleaved::Interleaved`])
//! weaves its codewords across lanes, and the unequal-error-protection
//! presets ([`crate::uep::Uep`]) use a strong `nsym` for stream headers and
//! a light one for bit-plane tails.

use crate::codec::{
    multi_correct_rate_per_mb, Capability, CorrectionReport, EccError, EccScheme, MB,
};
use crate::rscode::RsCodeword;

/// Codeword-level RS over GF(2^8): `255 − nsym`-byte messages, `nsym`
/// parity bytes each, ⌊nsym/2⌋ unknown-location byte corrections per
/// codeword.
#[derive(Debug, Clone)]
pub struct RsBlock {
    rs: RsCodeword,
}

impl RsBlock {
    /// Create a scheme with `nsym` parity bytes per codeword (2..=250).
    pub fn new(nsym: usize) -> Result<RsBlock, EccError> {
        if !(2..=250).contains(&nsym) {
            return Err(EccError::InvalidConfig(format!(
                "rs-block: nsym must be in 2..=250, got {nsym}"
            )));
        }
        Ok(RsBlock { rs: RsCodeword::new(nsym)? })
    }

    /// Parity bytes per codeword.
    pub fn nsym(&self) -> usize {
        self.rs.nsym
    }

    /// Data bytes per codeword.
    pub fn message_len(&self) -> usize {
        self.rs.max_message_len()
    }

    /// Unknown-location byte errors correctable per codeword.
    pub fn max_errors(&self) -> usize {
        self.rs.max_errors()
    }
}

impl EccScheme for RsBlock {
    fn name(&self) -> &'static str {
        "rs-block"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.message_len()) * self.nsym()
    }

    fn storage_overhead(&self) -> f64 {
        self.nsym() as f64 / self.message_len() as f64
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        for (msg, slot) in data.chunks(self.message_len()).zip(parity.chunks_mut(self.nsym())) {
            let cw = self.rs.encode(msg);
            // The codeword is msg ‖ parity; the slot gets the parity tail.
            if let Some(tail) = cw.get(msg.len()..) {
                slot.copy_from_slice(tail);
            }
        }
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "rs-block parity region {} bytes, expected {expected}",
                    parity.len()
                ),
            });
        }
        let mut report = CorrectionReport::default();
        let mlen = self.message_len();
        let nsym = self.nsym();
        for (msg, pslot) in data.chunks_mut(mlen).zip(parity.chunks_mut(nsym)) {
            report.blocks_checked += 1;
            // arc-lint: bounded(one codeword: at most 255 bytes)
            let mut cw = Vec::with_capacity(msg.len() + nsym);
            cw.extend_from_slice(msg);
            cw.extend_from_slice(pslot);
            let (fixed_msg, fixed) = self.rs.decode(&cw)?;
            if fixed > 0 {
                msg.copy_from_slice(&fixed_msg);
                // Corrections may have landed in the parity tail too;
                // regenerating it from the repaired message restores it.
                let clean = self.rs.encode(msg);
                if let Some(tail) = clean.get(msg.len()..) {
                    pslot.copy_from_slice(tail);
                }
                // Symbol-granular repairs are tallied as corrected_bits
                // (one per repaired byte), mirroring the container header's
                // symbols-corrected accounting.
                report.corrected_bits += fixed as u64;
            }
        }
        Ok(report)
    }

    fn capability(&self) -> Capability {
        Capability {
            detects_sparse: true,
            corrects_sparse: true,
            // Bursts up to ⌊nsym/2⌋ bytes inside one codeword; the
            // interleaved wrapper stretches this across lanes.
            corrects_burst: true,
            correctable_per_mb: multi_correct_rate_per_mb(
                MB / self.message_len() as f64,
                self.max_errors(),
            ),
        }
    }

    fn min_bytes_per_thread(&self) -> usize {
        // Codeword RS is the heaviest per-byte scheme in the crate; even
        // small jobs amortize a worker.
        1 << 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 67) ^ (i >> 3)) as u8).collect()
    }

    #[test]
    fn validates_nsym() {
        assert!(RsBlock::new(0).is_err());
        assert!(RsBlock::new(1).is_err());
        assert!(RsBlock::new(251).is_err());
        assert!(RsBlock::new(32).is_ok());
    }

    #[test]
    fn clean_round_trip_various_sizes() {
        let s = RsBlock::new(16).unwrap();
        for n in [0usize, 1, 100, 239, 240, 1000, 10_000] {
            let data = sample(n);
            let enc = s.encode(&data);
            assert_eq!(enc.len(), n + s.parity_len(n));
            let (out, report) = s.decode(&enc, n).unwrap();
            assert_eq!(out, data, "n={n}");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn corrects_up_to_t_bytes_per_codeword() {
        let s = RsBlock::new(32).unwrap();
        let data = sample(1000);
        let enc = s.encode(&data);
        let mut bad = enc.clone();
        // 16 corrupted bytes confined to the first codeword's message.
        for b in &mut bad[10..26] {
            *b ^= 0xA5;
        }
        let (out, report) = s.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_bits, 16);
    }

    #[test]
    fn burst_beyond_t_defeats_it() {
        let s = RsBlock::new(32).unwrap();
        let data = sample(1000);
        let enc = s.encode(&data);
        let mut bad = enc.clone();
        // 40 > t = 16 corrupted bytes inside one codeword: must not
        // silently return wrong data claiming success.
        for b in &mut bad[0..40] {
            *b ^= 0xFF;
        }
        match s.decode(&bad, data.len()) {
            Err(_) => {}
            Ok((out, _)) => assert_ne!(out, data),
        }
    }

    #[test]
    fn parity_region_damage_is_repaired() {
        let s = RsBlock::new(16).unwrap();
        let data = sample(500);
        let enc = s.encode(&data);
        let mut bad = enc.clone();
        let plen = s.parity_len(data.len());
        bad[data.len() + 3] ^= 0x77;
        bad[data.len() + plen - 1] ^= 0x01;
        let (out, report) = s.decode(&bad, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.corrected_bits >= 1);
        // And the repaired buffer re-verifies clean.
        let mut buf = bad.clone();
        s.verify_and_correct_in_place(&mut buf, data.len()).unwrap();
        let report = s.verify_and_correct_in_place(&mut buf, data.len()).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn overhead_and_capability() {
        let s = RsBlock::new(32).unwrap();
        assert_eq!(s.message_len(), 223);
        assert!((s.storage_overhead() - 32.0 / 223.0).abs() < 1e-12);
        let cap = s.capability();
        assert!(cap.corrects_sparse && cap.corrects_burst);
        assert!(cap.correctable_per_mb > 1000.0, "rate={}", cap.correctable_per_mb);
    }

    #[test]
    fn malformed_parity_length_rejected() {
        let s = RsBlock::new(8).unwrap();
        let mut data = sample(100);
        let mut parity = vec![0u8; 7];
        assert!(matches!(
            s.verify_and_correct(&mut data, &mut parity),
            Err(EccError::Malformed { .. })
        ));
    }
}
