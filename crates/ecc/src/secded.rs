//! SEC-DED (single-error-correct, double-error-detect) extended Hamming codes.
//!
//! ARC's SEC-DED is the Hamming code of [`crate::hamming`] plus one overall
//! parity bit per block (§2.2). The extra bit disambiguates single errors
//! (overall parity flips) from double errors (overall parity holds while the
//! syndrome is non-zero), which plain Hamming silently miscorrects. This is
//! the scheme ARC selects for the paper's §6.3 resiliency evaluation
//! (1 error/MB → SEC-DED over every eight bytes).

use crate::bits::{get_bit, read_bits_at, set_bit, PackedBitWriter};
use crate::codec::{
    single_correct_rate_per_mb, Capability, CorrectionReport, EccError, EccScheme, MB,
};
use crate::hamming::{layout, load_block, store_block, BlockWidth};

/// SEC-DED code over [`BlockWidth`] blocks: (13,8) or (72,64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecDed {
    /// Codeword width.
    pub width: BlockWidth,
}

impl SecDed {
    /// SEC-DED(13,8): one data byte per codeword, 5 parity bits.
    pub fn w8() -> SecDed {
        SecDed { width: BlockWidth::W8 }
    }

    /// SEC-DED(72,64): eight data bytes per codeword, 8 parity bits.
    pub fn w64() -> SecDed {
        SecDed { width: BlockWidth::W64 }
    }

    /// Parity bits per block: Hamming bits + 1 overall bit.
    fn parity_bits(&self) -> u32 {
        self.width.hamming_parity_bits() + 1
    }

    fn blocks(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.width.data_bytes())
    }

    /// Overall (even) parity across the data block and its Hamming bits.
    #[inline]
    fn overall(block: u64, hamming_bits: u32) -> bool {
        ((block.count_ones() + hamming_bits.count_ones()) & 1) == 1
    }
}

impl EccScheme for SecDed {
    fn name(&self) -> &'static str {
        "secded"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        let bits = self.blocks(data_len) as u64 * self.parity_bits() as u64;
        bits.div_ceil(8) as usize
    }

    fn storage_overhead(&self) -> f64 {
        self.parity_bits() as f64 / self.width.data_bits() as f64
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        let lay = layout(self.width);
        let pb = self.parity_bits();
        let blocks = self.blocks(data.len());
        // Each block's Hamming bits plus overall bit form one (r+1)-bit
        // group, packed with whole-word stores (no per-bit set_bit and no
        // fill(0) pass — the writer covers every parity byte).
        let mut w = PackedBitWriter::new(parity);
        for i in 0..blocks {
            let block = load_block(data, i, self.width);
            let ham = lay.parity_of(block);
            let group = ham as u64 | ((Self::overall(block, ham) as u64) << lay.r);
            w.push(group, pb);
        }
        w.finish();
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!("secded parity region {} bytes, expected {expected}", parity.len()),
            });
        }
        let lay = layout(self.width);
        let pb = self.parity_bits() as u64;
        let blocks = self.blocks(data.len());
        let mut report = CorrectionReport { blocks_checked: blocks as u64, ..Default::default() };
        for i in 0..blocks {
            let mut block = load_block(data, i, self.width);
            let recomputed_ham = lay.parity_of(block);
            let base = i as u64 * pb;
            let group = read_bits_at(parity, base, self.parity_bits());
            let stored_ham = (group as u32) & ((1 << lay.r) - 1);
            let stored_overall = (group >> lay.r) & 1 == 1;
            let syndrome = recomputed_ham ^ stored_ham;
            // Overall parity check: recompute across received data + received
            // Hamming bits + received overall bit; zero means even weight.
            let overall_mismatch = Self::overall(block, stored_ham) != stored_overall;
            match (syndrome, overall_mismatch) {
                (0, false) => {}
                (0, true) => {
                    // Only the overall bit flipped.
                    set_bit(parity, base + lay.r as u64, !stored_overall);
                    report.corrected_bits += 1;
                }
                (s, true) => {
                    // Single error located by the syndrome.
                    if s > lay.n {
                        return Err(EccError::Uncorrectable {
                            scheme: "secded",
                            detail: format!("impossible syndrome {s} in block {i}"),
                        });
                    }
                    match lay.pos_to_databit[s as usize] {
                        Some(bit) => {
                            let tail_bits = (data.len() - i * self.width.data_bytes())
                                .min(self.width.data_bytes())
                                as u32
                                * 8;
                            if bit >= tail_bits {
                                return Err(EccError::Uncorrectable {
                                    scheme: "secded",
                                    detail: format!(
                                        "syndrome points into tail padding of block {i}"
                                    ),
                                });
                            }
                            block ^= 1u64 << bit;
                            store_block(data, i, self.width, block);
                        }
                        None => {
                            let pbit = s.trailing_zeros() as u64;
                            let idx = base + pbit;
                            let cur = get_bit(parity, idx);
                            set_bit(parity, idx, !cur);
                        }
                    }
                    report.corrected_bits += 1;
                }
                (_, false) => {
                    return Err(EccError::Uncorrectable {
                        scheme: "secded",
                        detail: format!("double-bit error detected in block {i}"),
                    });
                }
            }
        }
        Ok(report)
    }

    fn capability(&self) -> Capability {
        let codewords_per_mb = MB / self.width.data_bytes() as f64;
        Capability {
            detects_sparse: true,
            corrects_sparse: true,
            corrects_burst: false,
            correctable_per_mb: single_correct_rate_per_mb(codewords_per_mb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 197 + 43) % 256) as u8).collect()
    }

    #[test]
    fn clean_round_trip_both_widths() {
        for s in [SecDed::w8(), SecDed::w64()] {
            let data = sample(777);
            let enc = s.encode(&data);
            let (out, report) = s.decode(&enc, data.len()).unwrap();
            assert_eq!(out, data);
            assert!(report.is_clean());
        }
    }

    #[test]
    fn packed_parity_matches_per_bit_reference() {
        for s in [SecDed::w8(), SecDed::w64()] {
            let lay = layout(s.width);
            for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 777] {
                let data = sample(len);
                let mut reference = vec![0u8; s.parity_len(len)];
                let pb = s.parity_bits() as u64;
                for i in 0..len.div_ceil(s.width.data_bytes()) {
                    let block = load_block(&data, i, s.width);
                    let ham = lay.parity_of(block);
                    let base = i as u64 * pb;
                    for bit in 0..lay.r {
                        if ham & (1 << bit) != 0 {
                            set_bit(&mut reference, base + bit as u64, true);
                        }
                    }
                    if SecDed::overall(block, ham) {
                        set_bit(&mut reference, base + lay.r as u64, true);
                    }
                }
                assert_eq!(s.encode_parity(&data), reference, "width={:?} len={len}", s.width);
            }
        }
    }

    #[test]
    fn corrects_every_single_bit_flip_w8() {
        let s = SecDed::w8();
        let data = sample(40); // 40 blocks * 5 bits = 200 bits = 25 parity bytes
        let enc = s.encode(&data);
        for bit in 0..(enc.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, report) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "bit {bit} not corrected");
            assert_eq!(report.corrected_bits, 1, "bit {bit}");
        }
    }

    #[test]
    fn corrects_every_single_bit_flip_w64() {
        let s = SecDed::w64();
        let data = sample(8 * 16);
        let enc = s.encode(&data);
        for bit in 0..(enc.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, _) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "bit {bit} not corrected");
        }
    }

    #[test]
    fn detects_every_double_bit_flip_within_a_block_w8() {
        let s = SecDed::w8();
        let data = sample(4);
        let enc = s.encode(&data);
        // All pairs within block 0's codeword: data bits 0..8 plus its 5
        // parity bits at the start of the parity region.
        let mut codeword_bits: Vec<u64> = (0..8u64).collect();
        let parity_base = data.len() as u64 * 8;
        codeword_bits.extend((0..5u64).map(|b| parity_base + b));
        for (ai, &a) in codeword_bits.iter().enumerate() {
            for &b in &codeword_bits[ai + 1..] {
                let mut bad = enc.clone();
                flip_bit(&mut bad, a);
                flip_bit(&mut bad, b);
                assert!(s.decode(&bad, data.len()).is_err(), "double flip ({a},{b}) not detected");
            }
        }
    }

    #[test]
    fn detects_double_bit_flips_within_w64_block() {
        let s = SecDed::w64();
        let data = sample(8);
        let enc = s.encode(&data);
        for a in 0..64u64 {
            for b in (a + 1)..64u64 {
                let mut bad = enc.clone();
                flip_bit(&mut bad, a);
                flip_bit(&mut bad, b);
                assert!(s.decode(&bad, data.len()).is_err(), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn corrects_one_flip_per_block_independently() {
        let s = SecDed::w64();
        let data = sample(8 * 100);
        let mut enc = s.encode(&data);
        for i in 0..100u64 {
            flip_bit(&mut enc, i * 64 + ((i * 13) % 64));
        }
        let (out, report) = s.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.corrected_bits, 100);
    }

    #[test]
    fn ragged_tail_corrects() {
        let s = SecDed::w64();
        let data = sample(21);
        let enc = s.encode(&data);
        for bit in 0..(data.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, _) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "tail bit {bit}");
        }
    }

    #[test]
    fn overheads_match_paper_widths() {
        assert!((SecDed::w8().storage_overhead() - 5.0 / 8.0).abs() < 1e-12);
        assert!((SecDed::w64().storage_overhead() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn paper_1_error_per_mb_case_is_within_capability() {
        // §6.3: resiliency constraint of 1 error/MB selects SEC-DED per 8
        // bytes, guaranteed to catch any single error.
        let cap = SecDed::w64().capability();
        assert!(cap.correctable_per_mb >= 1.0);
        assert!(cap.corrects_sparse);
    }

    #[test]
    fn empty_input() {
        let s = SecDed::w64();
        let enc = s.encode(&[]);
        assert!(enc.is_empty());
        assert!(s.decode(&enc, 0).unwrap().0.is_empty());
    }
}
