//! Compiled XOR schedules for Reed-Solomon encode.
//!
//! The m×k Cauchy coefficient matrix expands entry-wise into an 8m×8k GF(2)
//! bitmatrix ([`crate::bitmatrix`]); each of its rows says which input *bit
//! planes* XOR together to form one output bit plane. This module compiles
//! that bitmatrix into an explicit XOR *program* and executes it with the
//! word-wide XOR kernel — no GF(2^8) table lookups in the hot loop, which is
//! the program-optimization playbook of "Accelerating XOR-based Erasure
//! Coding" (arXiv 2108.02692):
//!
//! 1. **Common-subexpression elimination.** Output rows of a dense random
//!    bitmatrix share about a quarter of their terms pairwise. The compiler
//!    repeatedly finds the pair of rows with the largest shared term set,
//!    hoists the shared part into a temporary plane computed once, and
//!    substitutes the temporary into both rows. Temporaries participate in
//!    later rounds, so sharing compounds.
//! 2. **Cache blocking.** The program runs strip-by-strip: a
//!    [`STRIP_BYTES`]-sized slice of every device is transposed into bit
//!    planes, the whole program executes over those L1/L2-resident strips,
//!    and output planes are transposed back into parity bytes. Device bytes
//!    in, device bytes out — the wire format is identical to the
//!    table-driven byte-wise encoder.
//!
//! Compiled schedules are memoized per `(k, m)` beside the Cauchy
//! coefficient cache, with a thread-local last-used slot so pool workers do
//! not contend on the global lock.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::bitmatrix::{bytes_to_planes, planes_to_bytes, BitMatrix};
use crate::gf256::{xor_slice, Gf};

/// Bytes of each device processed per blocked pass (must be a multiple of
/// 8). 1 KiB strips keep the full register file of the largest standard
/// configuration (k + m = 255, plus temporaries) within ~512 KiB — inside
/// L2 on anything current — while each XOR op still covers 128 bytes.
pub const STRIP_BYTES: usize = 1024;

/// Upper bound on CSE temporaries per schedule; a safety valve that bounds
/// compile time and the executor's register file for very large (k, m).
const MAX_TEMPS: usize = 2048;

/// Upper bound on CSE rounds (each round scans all row pairs once).
const MAX_ROUNDS: usize = 24;

/// Minimum shared-term count worth hoisting: factoring a pair with `w`
/// shared terms costs `w + 2` XORs and removes `2w`, so `w >= 3` is the
/// break-even-plus-one floor.
const MIN_SHARED: usize = 3;

/// One XOR-program instruction over the plane register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorOp {
    /// Destination register (output or temporary plane).
    pub dst: usize,
    /// Source register (input, temporary, or output plane).
    pub src: usize,
    /// `true` → `dst = src` (first term), `false` → `dst ^= src`.
    pub init: bool,
}

/// Compile-time statistics for one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleStats {
    /// XOR/copy ops the naive (unscheduled) bitmatrix would execute.
    pub naive_xors: usize,
    /// Ops in the compiled program.
    pub scheduled_xors: usize,
    /// Ops removed by common-subexpression elimination.
    pub cse_saved: usize,
    /// CSE temporaries allocated.
    pub temps: usize,
}

/// A compiled, executable XOR schedule for one (k, m) Cauchy matrix.
///
/// Register file layout: `[0, 8k)` input planes, `[8k, 8k + 8m)` output
/// planes, `[8k + 8m, ...)` temporaries.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Data device count.
    pub k: usize,
    /// Code device count.
    pub m: usize,
    /// The program, temporaries first, in dependency order.
    pub ops: Vec<XorOp>,
    /// Temporary plane count.
    pub n_temps: usize,
    /// Compile statistics.
    pub stats: ScheduleStats,
}

/// A growable bitset over plane columns.
#[derive(Debug, Clone, Default)]
struct Bitset {
    words: Vec<u64>,
}

impl Bitset {
    fn with_capacity(bits: usize) -> Bitset {
        // arc-lint: bounded(callers size bitsets from GF(256) code dims, bits <= 8 * 255)
        Bitset { words: vec![0u64; bits.div_ceil(64)] }
    }

    fn set(&mut self, bit: usize) {
        let w = bit / 64;
        if w >= self.words.len() {
            // arc-lint: bounded(grows to the highest set bit, <= 8 * 255 for GF(256) dims)
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (bit % 64);
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of the intersection with `other`.
    fn shared(&self, other: &Bitset) -> usize {
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// The intersection as a new bitset.
    fn intersection(&self, other: &Bitset) -> Bitset {
        Bitset { words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect() }
    }

    /// Remove every bit present in `other`.
    fn subtract(&mut self, other: &Bitset) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Indices of set bits, ascending.
    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl Schedule {
    /// Compile the XOR schedule for an m×k coefficient matrix.
    ///
    /// Deterministic: the same matrix always yields the byte-identical
    /// program (pair scans run in index order, ties resolve to the lowest
    /// pair), which the determinism test pins.
    pub fn compile(coeffs: &[Gf], k: usize, m: usize) -> Schedule {
        let bm = BitMatrix::expand(coeffs, k, m);
        let n_in = 8 * k;
        let n_out = 8 * m;
        let naive_xors = bm.ones();

        // Working rows: outputs first, temporaries appended as created.
        // Each row's bitset spans input columns plus temp columns
        // (temp t = column n_in + t).
        let mut rows: Vec<Bitset> = (0..n_out)
            .map(|r| {
                // arc-lint: bounded(n_in = 8k bits with k <= 255)
                let mut bs = Bitset::with_capacity(n_in);
                for (wi, &w) in bm.row(r).iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        bs.set(wi * 64 + b);
                    }
                }
                bs
            })
            .collect();
        let mut n_temps = 0usize;
        // Temp rows (indices n_out..) live in the same vec; creation order
        // is dependency order because a temp only references columns that
        // already exist when it is created.
        let mut round = 0usize;
        while round < MAX_ROUNDS && n_temps < MAX_TEMPS {
            round += 1;
            // One greedy matching pass: each row pairs with its best
            // partner, pairs processed in descending shared-count order.
            let n_rows = rows.len();
            let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
            for a in 0..n_rows {
                let mut best = (0usize, 0usize);
                for b in (a + 1)..n_rows {
                    let s = rows[a].shared(&rows[b]);
                    if s > best.0 {
                        best = (s, b);
                    }
                }
                if best.0 >= MIN_SHARED {
                    candidates.push((best.0, a, best.1));
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|x, y| (y.0, x.1, x.2).cmp(&(x.0, y.1, y.2)));
            // arc-lint: bounded(n_rows = 8m bits with m <= 255)
            let mut used = vec![false; n_rows];
            let mut factored = false;
            for (_, a, b) in candidates {
                if used[a] || used[b] || n_temps >= MAX_TEMPS {
                    continue;
                }
                // Re-derive the intersection: earlier factorings this round
                // may have shrunk either row.
                let shared = rows[a].intersection(&rows[b]);
                if shared.count() < MIN_SHARED {
                    continue;
                }
                used[a] = true;
                used[b] = true;
                let temp_col = n_in + n_temps;
                n_temps += 1;
                rows[a].subtract(&shared);
                rows[b].subtract(&shared);
                rows[a].set(temp_col);
                rows[b].set(temp_col);
                rows.push(shared);
                factored = true;
            }
            if !factored {
                break;
            }
        }

        // Emit: temps in dependency order, then output rows. Creation order
        // is NOT dependency order — a round-1 temp that serves as a parent
        // in a later factoring gains a reference to the newer temp split out
        // of it — so run Kahn's algorithm over the temp-to-temp reference
        // graph (acyclic by construction: a factoring's shared set never
        // contains either parent's own column). Ready temps are taken
        // smallest-index-first to keep emission deterministic.
        //
        // Column c maps to register: input c < n_in → c; temp c >= n_in →
        // n_in + n_out + (c - n_in). Temp row index t lives at rows[n_out + t].
        let temp_deps: Vec<Vec<usize>> = (0..n_temps)
            .map(|t| rows[n_out + t].iter_ones().filter(|&c| c >= n_in).map(|c| c - n_in).collect())
            .collect();
        // arc-lint: bounded(n_temps is capped by MAX_TEMPS)
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n_temps];
        // arc-lint: bounded(n_temps is capped by MAX_TEMPS)
        let mut pending = vec![0usize; n_temps];
        for (t, deps) in temp_deps.iter().enumerate() {
            pending[t] = deps.len();
            for &d in deps {
                dependents[d].push(t);
            }
        }
        let mut ready: std::collections::BTreeSet<usize> =
            (0..n_temps).filter(|&t| pending[t] == 0).collect();
        // arc-lint: bounded(n_temps is capped by MAX_TEMPS)
        let mut temp_order = Vec::with_capacity(n_temps);
        while let Some(&t) = ready.iter().next() {
            ready.remove(&t);
            temp_order.push(t);
            for &dep in &dependents[t] {
                pending[dep] -= 1;
                if pending[dep] == 0 {
                    ready.insert(dep);
                }
            }
        }
        debug_assert_eq!(temp_order.len(), n_temps, "cycle in temp dependency graph");

        let reg_of = |col: usize| if col < n_in { col } else { n_in + n_out + (col - n_in) };
        let mut ops = Vec::new();
        let emit_row = |dst: usize, row: &Bitset, ops: &mut Vec<XorOp>| {
            let mut first = true;
            for col in row.iter_ones() {
                ops.push(XorOp { dst, src: reg_of(col), init: first });
                first = false;
            }
            if first {
                // Empty row (possible only for a zero matrix row): emit a
                // self-init so the output plane is still defined as zero.
                ops.push(XorOp { dst, src: dst, init: true });
            }
        };
        for &t in &temp_order {
            emit_row(n_in + n_out + t, &rows[n_out + t], &mut ops);
        }
        for (r, row) in rows.iter().enumerate().take(n_out) {
            emit_row(n_in + r, row, &mut ops);
        }

        let scheduled_xors = ops.len();
        let stats = ScheduleStats {
            naive_xors,
            scheduled_xors,
            cse_saved: naive_xors.saturating_sub(scheduled_xors),
            temps: n_temps,
        };
        arc_telemetry::counter_add("ecc.schedule.compiled", 1);
        arc_telemetry::counter_add("ecc.schedule.xors", scheduled_xors as u64);
        arc_telemetry::counter_add("ecc.schedule.cse_saved", stats.cse_saved as u64);
        Schedule { k, m, ops, n_temps, stats }
    }

    /// Registers in the executor's plane file.
    fn n_regs(&self) -> usize {
        8 * self.k + 8 * self.m + self.n_temps
    }

    /// Scratch bytes one execution needs (allocated once per encode call).
    pub fn scratch_len(&self) -> usize {
        self.n_regs() * (STRIP_BYTES / 8)
    }

    /// Execute the schedule: read data devices out of `data` (device `i` =
    /// `data[i·d .. (i+1)·d]` zero-padded past `data.len()`), write the `m`
    /// parity devices contiguously into `parity_devs` (`m·d` bytes).
    ///
    /// Devices listed in `zeroed` (sorted or not, typically empty) are read
    /// as all-zero — the syndrome path uses this to exclude known-corrupt
    /// devices without copying the buffer.
    ///
    /// `scratch` must be at least [`Schedule::scratch_len`] bytes.
    pub fn encode_into(
        &self,
        data: &[u8],
        d: usize,
        parity_devs: &mut [u8],
        zeroed: &[usize],
        scratch: &mut [u8],
    ) {
        debug_assert!(parity_devs.len() >= self.m * d);
        debug_assert!(scratch.len() >= self.scratch_len());
        let n_in = 8 * self.k;
        let mut offset = 0usize;
        while offset < d {
            let strip = STRIP_BYTES.min(d - offset);
            let plane_len = strip.div_ceil(8);
            // Load every data device's strip into input planes.
            for i in 0..self.k {
                let dst = &mut scratch[8 * i * plane_len..(8 * i + 8) * plane_len];
                let start = (i * d + offset).min(data.len());
                let end = (i * d + offset + strip).min(data.len());
                if start >= end || zeroed.contains(&i) {
                    dst.fill(0);
                } else {
                    bytes_to_planes(&data[start..end], dst, plane_len);
                }
            }
            // Run the program over this strip.
            for op in &self.ops {
                if op.init && op.dst == op.src {
                    scratch[op.dst * plane_len..(op.dst + 1) * plane_len].fill(0);
                    continue;
                }
                let (lo, hi) = (op.dst.min(op.src), op.dst.max(op.src));
                let (head, tail) = scratch.split_at_mut(hi * plane_len);
                let a = &mut head[lo * plane_len..(lo + 1) * plane_len];
                let b = &mut tail[..plane_len];
                let (dst, src): (&mut [u8], &[u8]) = if op.dst < op.src { (a, b) } else { (b, a) };
                if op.init {
                    dst.copy_from_slice(src);
                } else {
                    xor_slice(dst, src);
                }
            }
            // Transpose output planes back into parity device bytes.
            for j in 0..self.m {
                let src = &scratch[(n_in + 8 * j) * plane_len..(n_in + 8 * j + 8) * plane_len];
                let dev = &mut parity_devs[j * d + offset..j * d + offset + strip];
                planes_to_bytes(src, dev, plane_len);
            }
            offset += strip;
        }
    }
}

/// Per-(k, m) memo of compiled schedules, mirroring the Cauchy coefficient
/// cache in [`crate::rs`].
type ScheduleCache = Mutex<HashMap<(usize, usize), Arc<Schedule>>>;
static SCHEDULE_CACHE: OnceLock<ScheduleCache> = OnceLock::new();

/// `(k, m)` plus the schedule it maps to, for the thread-local slot.
type ScheduleMemo = Option<((usize, usize), Arc<Schedule>)>;

thread_local! {
    /// Last schedule this worker used: pool threads re-encoding chunks of
    /// the same configuration hit this slot instead of the global mutex.
    static LAST_SCHEDULE: std::cell::RefCell<ScheduleMemo> =
        const { std::cell::RefCell::new(None) };
}

/// Fetch (compiling and memoizing on first use) the schedule for a
/// coefficient matrix. The thread-local fast path makes the steady-state
/// fetch lock-free for pool workers.
pub fn schedule_for(coeffs: &[Gf], k: usize, m: usize) -> Arc<Schedule> {
    let hit = LAST_SCHEDULE.with(|slot| {
        slot.borrow()
            .as_ref()
            .and_then(|(key, sched)| if *key == (k, m) { Some(sched.clone()) } else { None })
    });
    if let Some(s) = hit {
        return s;
    }
    let cache = SCHEDULE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // Poisoning only means another thread died mid-insert; the map is a
    // plain memo, so recover the guard.
    let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
    let sched =
        map.entry((k, m)).or_insert_with(|| Arc::new(Schedule::compile(coeffs, k, m))).clone();
    drop(map);
    LAST_SCHEDULE.with(|slot| *slot.borrow_mut() = Some(((k, m), sched.clone())));
    sched
}

/// Compile statistics of the cached schedule for `(k, m)`, if one has been
/// compiled in this process. `ecc_baseline` surfaces these into
/// `BENCH_ecc.json` without requiring the telemetry feature.
pub fn cached_stats(k: usize, m: usize) -> Option<ScheduleStats> {
    let cache = SCHEDULE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let map = cache.lock().unwrap_or_else(|p| p.into_inner());
    map.get(&(k, m)).map(|s| s.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::mul_acc_slice;

    fn cauchy(k: usize, m: usize) -> Vec<Gf> {
        let mut out = Vec::with_capacity(k * m);
        for j in 0..m {
            for i in 0..k {
                out.push(Gf(u8::try_from(j).unwrap() ^ u8::try_from(m + i).unwrap()).inv());
            }
        }
        out
    }

    /// Reference encode: the table-driven byte-wise loop from rs.rs.
    fn reference_parity(data: &[u8], d: usize, coeffs: &[Gf], k: usize, m: usize) -> Vec<u8> {
        let mut parity = vec![0u8; m * d];
        for j in 0..m {
            let dev_start = j * d;
            for i in 0..k {
                let start = (i * d).min(data.len());
                let end = ((i + 1) * d).min(data.len());
                let dev = &mut parity[dev_start..dev_start + (end - start)];
                mul_acc_slice(dev, &data[start..end], coeffs[j * k + i]);
            }
        }
        parity
    }

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 2654435761usize) >> 13) as u8).collect()
    }

    #[test]
    fn scheduled_encode_matches_table_reference() {
        for (k, m, len) in [
            (4usize, 2usize, 4096usize),
            (10, 4, 10 * 300 + 17),
            (3, 3, 25),
            (16, 4, 16 * STRIP_BYTES + 5), // multi-strip with ragged tail
            (1, 1, 100),
        ] {
            let coeffs = cauchy(k, m);
            let data = sample(len);
            let d = len.div_ceil(k);
            let sched = Schedule::compile(&coeffs, k, m);
            let mut scratch = vec![0u8; sched.scratch_len()];
            let mut parity = vec![0xA5u8; m * d];
            sched.encode_into(&data, d, &mut parity, &[], &mut scratch);
            let want = reference_parity(&data, d, &coeffs, k, m);
            assert_eq!(parity, want, "k={k} m={m} len={len}");
        }
    }

    #[test]
    fn zeroed_devices_are_excluded() {
        let (k, m, len) = (6usize, 3usize, 6 * 200usize);
        let coeffs = cauchy(k, m);
        let data = sample(len);
        let d = len / k;
        let sched = Schedule::compile(&coeffs, k, m);
        let mut scratch = vec![0u8; sched.scratch_len()];
        let mut parity = vec![0u8; m * d];
        sched.encode_into(&data, d, &mut parity, &[1, 4], &mut scratch);
        // Reference: same encode with devices 1 and 4 zeroed in the input.
        let mut masked = data.clone();
        for i in [1usize, 4] {
            masked[i * d..(i + 1) * d].fill(0);
        }
        let want = reference_parity(&masked, d, &coeffs, k, m);
        assert_eq!(parity, want);
    }

    #[test]
    fn cse_reduces_xor_count() {
        let sched = Schedule::compile(&cauchy(32, 8), 32, 8);
        assert!(sched.stats.cse_saved > 0, "no sharing found: {:?}", sched.stats);
        assert_eq!(sched.stats.naive_xors, sched.stats.scheduled_xors + sched.stats.cse_saved);
        assert!(sched.stats.scheduled_xors < sched.stats.naive_xors);
    }

    #[test]
    fn compile_is_deterministic() {
        let coeffs = cauchy(17, 6);
        let a = Schedule::compile(&coeffs, 17, 6);
        let b = Schedule::compile(&coeffs, 17, 6);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn cache_returns_shared_schedule() {
        let coeffs = cauchy(5, 2);
        let a = schedule_for(&coeffs, 5, 2);
        let b = schedule_for(&coeffs, 5, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cached_stats(5, 2).is_some());
        assert_eq!(cached_stats(5, 2).unwrap(), a.stats);
    }
}
