//! Property tests for the chunk-parallel zero-copy pipeline: every built-in
//! scheme × chunk sizes {1 KiB, 64 KiB, 1 MiB} × lengths that are not
//! multiples of the chunk size (empty input included) must round-trip
//! through encode → corrupt-k-bits → decode, and the merged
//! `CorrectionReport::blocks_checked` must equal the sum over chunks.

use std::sync::Arc;

use arc_ecc::bits::flip_bit;
use arc_ecc::{EccConfig, EccScheme, InterleavedSecDed, ParallelCodec, Replication};
use proptest::prelude::*;

/// The three chunk granularities the issue calls out.
fn chunk_sizes() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize << 10), Just(1usize << 16), Just(1usize << 20)]
}

/// Built-in configurations that can *correct* (parity is detect-only and
/// gets its own clean-path test below).
fn correcting_configs() -> impl Strategy<Value = EccConfig> {
    prop_oneof![
        Just(EccConfig::hamming(false)),
        Just(EccConfig::hamming(true)),
        Just(EccConfig::secded(false)),
        Just(EccConfig::secded(true)),
        Just(EccConfig::rs(223, 32).unwrap()),
        Just(EccConfig::rs(16, 4).unwrap()),
    ]
}

fn all_configs() -> impl Strategy<Value = EccConfig> {
    prop_oneof![
        Just(EccConfig::parity(1).unwrap()),
        Just(EccConfig::parity(8).unwrap()),
        correcting_configs(),
    ]
}

fn sample(len: usize, seed: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(seed | 1).wrapping_add(seed >> 32) >> 24) as u8)
        .collect()
}

/// One deterministic in-data bit position per chunk, derived from `seed`.
fn one_flip_per_chunk(data_len: usize, chunk_size: usize, seed: u64) -> Vec<u64> {
    let mut flips = Vec::new();
    let mut start = 0usize;
    let mut i = 0u64;
    while start < data_len {
        let len = (data_len - start).min(chunk_size);
        let bit_in_chunk = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i) % (len as u64 * 8);
        flips.push(start as u64 * 8 + bit_in_chunk);
        start += len;
        i += 1;
    }
    flips
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → flip one bit per chunk → decode returns the original data.
    #[test]
    fn corrupted_roundtrip_all_correcting_schemes(
        config in correcting_configs(),
        chunk_size in chunk_sizes(),
        data_len in 0usize..150_000,
        threads in prop_oneof![Just(1usize), Just(4usize)],
        seed in any::<u64>(),
    ) {
        let data = sample(data_len, seed);
        let codec = ParallelCodec::with_chunk_size(config, threads, chunk_size).unwrap();
        let mut encoded = codec.encode(&data);
        prop_assert_eq!(encoded.len(), codec.encoded_len(data.len()));
        let flips = one_flip_per_chunk(data.len(), chunk_size, seed);
        for &bit in &flips {
            flip_bit(&mut encoded, bit);
        }
        let (out, report) = codec.decode(&encoded, data.len()).unwrap();
        prop_assert_eq!(out, data);
        if !flips.is_empty() {
            prop_assert!(!report.is_clean(), "{} flips went unreported", flips.len());
        }
    }

    /// Detect-only parity round-trips cleanly at every geometry.
    #[test]
    fn clean_roundtrip_all_schemes(
        config in all_configs(),
        chunk_size in chunk_sizes(),
        data_len in 0usize..150_000,
        seed in any::<u64>(),
    ) {
        let data = sample(data_len, seed);
        let codec = ParallelCodec::with_chunk_size(config, 2, chunk_size).unwrap();
        let encoded = codec.encode(&data);
        let (out, report) = codec.decode(&encoded, data.len()).unwrap();
        prop_assert_eq!(out, data);
        prop_assert!(report.is_clean());
    }

    /// The merged report's `blocks_checked` equals the sum of per-chunk
    /// single-shot decodes.
    #[test]
    fn blocks_checked_sums_across_chunks(
        config in all_configs(),
        chunk_size in prop_oneof![Just(1usize << 10), Just(1usize << 16)],
        data_len in 1usize..80_000,
        seed in any::<u64>(),
    ) {
        let data = sample(data_len, seed);
        let codec = ParallelCodec::with_chunk_size(config, 2, chunk_size).unwrap();
        let encoded = codec.encode(&data);
        let (_, merged) = codec.decode(&encoded, data.len()).unwrap();
        let mut expected = 0u64;
        for chunk in data.chunks(chunk_size) {
            let single = config.encode(chunk);
            let (_, r) = config.decode(&single, chunk.len()).unwrap();
            expected += r.blocks_checked;
        }
        prop_assert_eq!(merged.blocks_checked, expected, "{}", config);
    }

    /// `encode_into` over a garbage-prefilled buffer is byte-identical to
    /// `encode` (the `_into` contract: every output byte is overwritten).
    #[test]
    fn encode_into_ignores_prior_buffer_contents(
        config in all_configs(),
        chunk_size in chunk_sizes(),
        data_len in 0usize..100_000,
        fill in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let data = sample(data_len, seed);
        let codec = ParallelCodec::with_chunk_size(config, 2, chunk_size).unwrap();
        let reference = codec.encode(&data);
        let mut out = vec![fill; codec.encoded_len(data.len())];
        codec.encode_into(&data, &mut out);
        prop_assert_eq!(out, reference);
    }

    /// Extension-API schemes (boxed trait objects using the default `_into`
    /// fallbacks or their own overrides) get the same guarantees.
    #[test]
    fn extension_schemes_roundtrip_with_damage(
        tmr in prop_oneof![Just(true), Just(false)],
        chunk_size in prop_oneof![Just(1usize << 10), Just(1usize << 16)],
        data_len in 1usize..40_000,
        seed in any::<u64>(),
    ) {
        let scheme: Arc<dyn EccScheme> = if tmr {
            Arc::new(Replication::tmr())
        } else {
            Arc::new(InterleavedSecDed::new(4).unwrap())
        };
        let data = sample(data_len, seed);
        let codec = ParallelCodec::with_chunk_size(scheme, 2, chunk_size).unwrap();
        let mut encoded = codec.encode(&data);
        for &bit in &one_flip_per_chunk(data.len(), chunk_size, seed) {
            flip_bit(&mut encoded, bit);
        }
        let (out, report) = codec.decode(&encoded, data.len()).unwrap();
        prop_assert_eq!(out, data);
        prop_assert!(!report.is_clean());
    }
}
