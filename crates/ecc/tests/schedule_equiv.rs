//! Property-based equivalence of the scheduled-XOR Reed-Solomon backend
//! against the table-driven GF(2^8) reference (DESIGN.md §13).
//!
//! The compiled bit-plane XOR program must be *byte-identical* to the
//! byte-wise multiply-accumulate encoder for every (k, m) and every ragged
//! buffer length — the wire format does not know which backend produced it.
//! These tests drive both the `Schedule` primitive directly and the full
//! `ReedSolomon` codec with the backend forced each way.

use proptest::prelude::*;

use arc_ecc::codec::EccScheme;
use arc_ecc::gf256::{mul_acc_slice, Gf};
use arc_ecc::rs::{set_rs_backend, ReedSolomon, RsBackend};
use arc_ecc::schedule::Schedule;

/// The Cauchy coefficient matrix `ReedSolomon` uses, rebuilt here so the
/// primitive-level tests do not depend on the codec's internals.
fn cauchy(k: usize, m: usize) -> Vec<Gf> {
    let mut out = Vec::with_capacity(k * m);
    for j in 0..m {
        for i in 0..k {
            out.push(Gf(u8::try_from(j).unwrap() ^ u8::try_from(m + i).unwrap()).inv());
        }
    }
    out
}

/// Table-driven parity over zero-padded devices: the reference semantics.
fn reference_parity(data: &[u8], d: usize, coeffs: &[Gf], k: usize, m: usize) -> Vec<u8> {
    let mut parity = vec![0u8; m * d];
    for j in 0..m {
        for i in 0..k {
            let start = (i * d).min(data.len());
            let end = ((i + 1) * d).min(data.len());
            let dev = &mut parity[j * d..j * d + (end - start)];
            mul_acc_slice(dev, &data[start..end], coeffs[j * k + i]);
        }
    }
    parity
}

/// Restores the automatic backend when dropped, even on panic.
struct BackendGuard;
impl Drop for BackendGuard {
    fn drop(&mut self) {
        set_rs_backend(RsBackend::Auto);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scheduled encode equals the table-driven reference over random
    /// (k, m) and ragged lengths, including zero-length tails and lengths
    /// that do not fill every device.
    #[test]
    fn scheduled_encode_matches_reference(
        k in 1usize..24,
        m in 1usize..8,
        data in proptest::collection::vec(any::<u8>(), 0..6000),
    ) {
        prop_assume!(!data.is_empty());
        let coeffs = cauchy(k, m);
        let d = data.len().div_ceil(k);
        let sched = Schedule::compile(&coeffs, k, m);
        let mut scratch = vec![0u8; sched.scratch_len()];
        let mut parity = vec![0xCCu8; m * d];
        sched.encode_into(&data, d, &mut parity, &[], &mut scratch);
        prop_assert_eq!(parity, reference_parity(&data, d, &coeffs, k, m));
    }

    /// Scheduled syndromes (encode with erased devices read as zero) equal
    /// the reference computed over an explicitly zero-masked buffer.
    #[test]
    fn scheduled_syndromes_match_reference(
        k in 2usize..16,
        m in 1usize..6,
        data in proptest::collection::vec(any::<u8>(), 64..4000),
        bad_seed: u8,
    ) {
        let coeffs = cauchy(k, m);
        let d = data.len().div_ceil(k);
        let bad = vec![usize::from(bad_seed) % k];
        let sched = Schedule::compile(&coeffs, k, m);
        let mut scratch = vec![0u8; sched.scratch_len()];
        let mut parity = vec![0u8; m * d];
        sched.encode_into(&data, d, &mut parity, &bad, &mut scratch);
        let mut masked = data.clone();
        let start = (bad[0] * d).min(data.len());
        let end = ((bad[0] + 1) * d).min(data.len());
        masked[start..end].fill(0);
        prop_assert_eq!(parity, reference_parity(&masked, d, &coeffs, k, m));
    }

    /// The full codec produces byte-identical encodings under both
    /// backends, and the scheduled decode repairs real erasures.
    #[test]
    fn codec_backends_are_byte_identical(
        k in 1usize..20,
        m in 1usize..6,
        data in proptest::collection::vec(any::<u8>(), 1..5000),
        corrupt_dev_seed: u8,
    ) {
        let _guard = BackendGuard;
        let rs = ReedSolomon::new(k, m).unwrap();
        set_rs_backend(RsBackend::Table);
        let table_enc = rs.encode(&data);
        set_rs_backend(RsBackend::Scheduled);
        let sched_enc = rs.encode(&data);
        prop_assert_eq!(&table_enc, &sched_enc);

        // Corrupt one whole device and repair it through the scheduled
        // syndrome path.
        let d = rs.device_size(data.len());
        let dev = usize::from(corrupt_dev_seed) % k;
        let start = (dev * d).min(data.len());
        let end = ((dev + 1) * d).min(data.len());
        prop_assume!(start < end);
        let mut bad = sched_enc.clone();
        for b in &mut bad[start..end] {
            *b = !*b;
        }
        let (out, report) = rs.decode(&bad, data.len()).unwrap();
        prop_assert_eq!(out, data);
        prop_assert!(report.corrected_devices >= 1);
    }
}

/// Compiling the same (k, m) twice yields byte-identical programs — the
/// scheduler has no iteration-order or randomness leaks.
#[test]
fn compile_is_deterministic_across_instances() {
    for (k, m) in [(4usize, 2usize), (17, 6), (32, 8), (64, 16)] {
        let coeffs = cauchy(k, m);
        let a = Schedule::compile(&coeffs, k, m);
        let b = Schedule::compile(&coeffs, k, m);
        assert_eq!(a.ops, b.ops, "k={k} m={m}");
        assert_eq!(a.stats, b.stats, "k={k} m={m}");
        assert_eq!(a.n_temps, b.n_temps, "k={k} m={m}");
    }
}

/// CSE must actually help on a realistic dense matrix, and its accounting
/// must balance.
#[test]
fn cse_accounting_balances() {
    let (k, m) = (48usize, 12usize);
    let sched = Schedule::compile(&cauchy(k, m), k, m);
    assert!(sched.stats.cse_saved > 0);
    assert_eq!(sched.stats.naive_xors, sched.stats.scheduled_xors + sched.stats.cse_saved);
}
