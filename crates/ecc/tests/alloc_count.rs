//! Counting-allocator proof of the zero-copy pipeline's allocation
//! contract: sequential `ParallelCodec::encode` makes exactly one heap
//! allocation (the returned container) and a clean sequential
//! `decode_in_place` makes none for the bit-oriented schemes.
//!
//! Everything lives in one `#[test]` so no sibling test can allocate
//! concurrently, and the counters only advance on the measuring thread
//! while a `counted` region is live — the libtest harness thread makes
//! small allocations of its own (capture plumbing, timeout bookkeeping) at
//! unpredictable moments, and a process-global count flakes on them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use arc_ecc::{EccConfig, ParallelCodec};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on the test thread while a `counted` closure runs. The codec
    /// paths under measurement are sequential (1 thread), so scoping the
    /// count to this thread loses nothing.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

/// Count one allocation of `size` bytes, if this thread is measuring.
/// `try_with` because the allocator also runs during TLS teardown.
fn note(size: usize) {
    let _ = MEASURING.try_with(|m| {
        if m.get() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
            BYTES.fetch_add(size, Ordering::SeqCst);
        }
    });
}

// SAFETY: a pure forwarding allocator — every method delegates to `System`
// with unchanged arguments, so `System`'s allocation guarantees carry over;
// the side counters are atomics with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc`; discharged below
    // by forwarding to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::alloc_zeroed`; discharged
    // below by forwarding to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc`; discharged
    // below by forwarding to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` in `alloc`/`alloc_zeroed`/
        // `realloc` above with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::realloc`; discharged
    // below by forwarding to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation and
        // `new_size` is forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (R, usize, usize) {
    let allocs0 = ALLOCS.load(Ordering::SeqCst);
    let bytes0 = BYTES.load(Ordering::SeqCst);
    MEASURING.with(|m| m.set(true));
    let r = f();
    MEASURING.with(|m| m.set(false));
    (r, ALLOCS.load(Ordering::SeqCst) - allocs0, BYTES.load(Ordering::SeqCst) - bytes0)
}

#[test]
fn sequential_pipeline_allocation_contract() {
    let data: Vec<u8> = (0..200_000).map(|i| ((i * 31) ^ (i >> 6)) as u8).collect();
    let chunk = 64 * 1024;

    let bit_schemes =
        [EccConfig::parity(8).unwrap(), EccConfig::hamming(true), EccConfig::secded(true)];

    // Warm up every scheme's lazily-initialized lookup tables (Hamming /
    // SEC-DED layouts live in OnceLocks) so the counters below only see
    // steady-state behaviour.
    for cfg in bit_schemes.iter().copied().chain([EccConfig::rs(16, 4).unwrap()]) {
        let codec = ParallelCodec::with_chunk_size(cfg, 1, chunk).unwrap();
        let warm = codec.encode(&data[..4096]);
        codec.decode(&warm, 4096).unwrap();
    }

    // Encode: exactly one allocation — the container itself.
    for cfg in bit_schemes.iter().copied().chain([EccConfig::rs(16, 4).unwrap()]) {
        let codec = ParallelCodec::with_chunk_size(cfg, 1, chunk).unwrap();
        let (encoded, allocs, bytes) = counted(|| codec.encode(&data));
        assert_eq!(allocs, 1, "{cfg}: encode must allocate only the container");
        assert_eq!(bytes, encoded.len(), "{cfg}: the single allocation is the container");
        drop(encoded);
    }

    // Clean decode_in_place: zero allocations for the bit-oriented schemes.
    for cfg in bit_schemes {
        let codec = ParallelCodec::with_chunk_size(cfg, 1, chunk).unwrap();
        let mut encoded = codec.encode(&data);
        let ((), allocs, _) = counted(|| {
            let report = codec.decode_in_place(&mut encoded, data.len()).unwrap();
            assert!(report.is_clean());
        });
        assert_eq!(allocs, 0, "{cfg}: clean in-place decode must not allocate");
        assert_eq!(&encoded[..data.len()], &data[..]);
    }

    // RS's verify path keeps small per-chunk device lists; in-place decode
    // must stay far below a full-buffer copy.
    let rs = ParallelCodec::with_chunk_size(EccConfig::rs(16, 4).unwrap(), 1, chunk).unwrap();
    let mut encoded = rs.encode(&data);
    let ((), _, bytes) = counted(|| {
        rs.decode_in_place(&mut encoded, data.len()).unwrap();
    });
    assert!(bytes < 4096, "rs clean decode allocated {bytes} bytes");

    // The borrowing decode wrapper pays exactly one payload-sized copy.
    let codec = ParallelCodec::with_chunk_size(EccConfig::secded(true), 1, chunk).unwrap();
    let encoded = codec.encode(&data);
    let ((out, _), allocs, bytes) = counted(|| codec.decode(&encoded, data.len()).unwrap());
    assert_eq!(out, data);
    assert_eq!(allocs, 1, "borrowing decode must copy the payload exactly once");
    assert_eq!(bytes, encoded.len());
}
