//! Property-based tests for the ECC substrate: field laws, round-trips,
//! and correction guarantees under adversarial corruption.

use proptest::prelude::*;

use arc_ecc::bits::flip_bit;
use arc_ecc::gf256::Gf;
use arc_ecc::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- GF(2^8) field laws -------------------------------------------

    #[test]
    fn gf_addition_is_commutative_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf(a), Gf(b), Gf(c));
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    }

    #[test]
    fn gf_multiplication_is_commutative_associative(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf(a), Gf(b), Gf(c));
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
    }

    #[test]
    fn gf_distributivity(a: u8, b: u8, c: u8) {
        let (a, b, c) = (Gf(a), Gf(b), Gf(c));
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn gf_inverse_law(a in 1u8..) {
        let a = Gf(a);
        prop_assert_eq!(a.mul(a.inv()), Gf::ONE);
        prop_assert_eq!(a.div(a), Gf::ONE);
    }

    // ---- word-wide kernels vs the scalar field ------------------------

    #[test]
    fn mul_acc_kernel_matches_scalar_field(
        c: u8,
        src in proptest::collection::vec(any::<u8>(), 0..300),
        seed: u8,
    ) {
        let c = Gf(c);
        let mut dst: Vec<u8> =
            (0..src.len()).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
        let mut reference = dst.clone();
        for (d, &s) in reference.iter_mut().zip(&src) {
            *d ^= c.mul(Gf(s)).0;
        }
        arc_ecc::gf256::mul_acc_slice(&mut dst, &src, c);
        prop_assert_eq!(dst, reference);
    }

    #[test]
    fn scale_kernel_matches_scalar_field(
        c: u8,
        mut buf in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let c = Gf(c);
        let reference: Vec<u8> = buf.iter().map(|&b| c.mul(Gf(b)).0).collect();
        arc_ecc::gf256::scale_slice(&mut buf, c);
        prop_assert_eq!(buf, reference);
    }
}

fn arb_scheme() -> impl Strategy<Value = EccConfig> {
    prop_oneof![
        (1usize..64).prop_map(|b| EccConfig::parity(b).unwrap()),
        any::<bool>().prop_map(EccConfig::hamming),
        any::<bool>().prop_map(EccConfig::secded),
        (1usize..40, 1usize..24).prop_map(|(k, m)| EccConfig::rs(k, m).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- scheme-level round-trips --------------------------------------

    #[test]
    fn clean_round_trip_any_scheme_any_data(
        scheme in arb_scheme(),
        data in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        let enc = scheme.encode(&data);
        prop_assert_eq!(enc.len(), data.len() + scheme.parity_len(data.len()));
        let (out, report) = scheme.decode(&enc, data.len()).unwrap();
        prop_assert_eq!(out, data);
        prop_assert!(report.is_clean());
    }

    #[test]
    fn secded_corrects_any_single_flip(
        wide: bool,
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        bit_sel in any::<proptest::sample::Index>(),
    ) {
        let scheme = EccConfig::secded(wide);
        let mut enc = scheme.encode(&data);
        let used_parity_bits = {
            // Only flip bits the decoder actually reads: data region plus
            // the used (non-padding) parity bits.
            let blocks = data.len().div_ceil(if wide { 8 } else { 1 }) as u64;
            let pb = if wide { 8 } else { 5 };
            data.len() as u64 * 8 + blocks * pb
        };
        let bit = bit_sel.index(used_parity_bits as usize) as u64;
        flip_bit(&mut enc, bit);
        let (out, report) = scheme.decode(&enc, data.len()).unwrap();
        prop_assert_eq!(out, data);
        prop_assert_eq!(report.corrected_bits, 1);
    }

    #[test]
    fn hamming_corrects_any_single_data_flip(
        wide: bool,
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        bit_sel in any::<proptest::sample::Index>(),
    ) {
        let scheme = EccConfig::hamming(wide);
        let mut enc = scheme.encode(&data);
        let bit = bit_sel.index(data.len() * 8) as u64;
        flip_bit(&mut enc, bit);
        let (out, _) = scheme.decode(&enc, data.len()).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn parity_detects_any_single_data_flip(
        block in 1usize..32,
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        bit_sel in any::<proptest::sample::Index>(),
    ) {
        let scheme = EccConfig::parity(block).unwrap();
        let mut enc = scheme.encode(&data);
        let bit = bit_sel.index(data.len() * 8) as u64;
        flip_bit(&mut enc, bit);
        prop_assert!(scheme.decode(&enc, data.len()).is_err());
    }

    #[test]
    fn rs_corrects_up_to_m_device_erasures(
        k in 2usize..24,
        m in 1usize..10,
        data in proptest::collection::vec(any::<u8>(), 64..2048),
        kill_seed: u64,
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let scheme = EccConfig::Rs(rs);
        let mut enc = scheme.encode(&data);
        let d = rs.device_size(data.len());
        // Corrupt up to m distinct data devices completely.
        let kill = (kill_seed as usize % m) + 1;
        for i in 0..kill {
            let dev = (i * 7 + kill_seed as usize) % k;
            let start = (dev * d).min(data.len());
            let end = ((dev + 1) * d).min(data.len());
            for b in &mut enc[start..end] {
                *b = !*b;
            }
        }
        let (out, _) = scheme.decode(&enc, data.len()).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn rs_codeword_corrects_random_errors(
        nsym in 2usize..40,
        msg in proptest::collection::vec(any::<u8>(), 1..120),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..), 0..6),
    ) {
        prop_assume!(msg.len() + nsym <= 255);
        let rs = RsCodeword::new(nsym).unwrap();
        let cw = rs.encode(&msg);
        let mut bad = cw.clone();
        let mut positions = std::collections::HashSet::new();
        for (idx, xor) in &flips {
            let p = idx.index(bad.len());
            if positions.insert(p) {
                bad[p] ^= xor;
            }
        }
        if positions.len() <= nsym / 2 {
            let (out, fixed) = rs.decode(&bad).unwrap();
            prop_assert_eq!(out, msg);
            prop_assert_eq!(fixed, positions.len());
        }
    }

    #[test]
    fn parallel_codec_matches_serial(
        data in proptest::collection::vec(any::<u8>(), 0..20_000),
        chunk in 128usize..4096,
    ) {
        let cfg = EccConfig::secded(true);
        let seq = ParallelCodec::with_chunk_size(cfg, 1, chunk).unwrap();
        let par = ParallelCodec::with_chunk_size(cfg, 3, chunk).unwrap();
        let a = seq.encode(&data);
        let b = par.encode(&data);
        prop_assert_eq!(&a, &b);
        let (out, _) = par.decode(&a, data.len()).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn config_ids_round_trip(scheme in arb_scheme()) {
        let parsed = EccConfig::parse_id(&scheme.id()).unwrap();
        prop_assert_eq!(parsed, scheme);
    }
}
