//! Telemetry accounting under an oversubscribed pool: a `ParallelCodec`
//! running on 4× the machine's cores must report counters that sum exactly
//! to the work submitted — no chunk lost or double-counted however the
//! workers interleave.
//!
//! One `#[test]` function only: the telemetry registry is process-global,
//! so concurrent test functions would see each other's counts.

#![cfg(feature = "telemetry")]

use arc_ecc::{EccConfig, ParallelCodec};

const CHUNK: usize = 4096;
const DATA_LEN: usize = 100_000;
const REPS: u64 = 3;

#[test]
fn oversubscribed_pool_counters_sum_to_work_submitted() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = cores * 4;
    arc_telemetry::reset();
    let codec = ParallelCodec::with_chunk_size(EccConfig::secded(true), threads, CHUNK).unwrap();

    let data: Vec<u8> = (0..DATA_LEN).map(|i| (i * 31 % 251) as u8).collect();
    let chunks_per_pass = DATA_LEN.div_ceil(CHUNK) as u64;
    for _ in 0..REPS {
        let mut encoded = codec.encode(&data);
        let report = codec.decode_in_place(&mut encoded, data.len()).unwrap();
        assert_eq!(&encoded[..data.len()], &data[..]);
        assert_eq!(report.corrected_bits, 0, "clean decode corrected something");
    }

    let snap = arc_telemetry::snapshot();
    let expected = REPS * chunks_per_pass;
    for dir in ["encode", "decode"] {
        let submitted = snap.counter(&format!("ecc.{dir}.chunks_submitted"));
        let done = snap.counter(&format!("ecc.{dir}.chunks_done"));
        assert_eq!(submitted, expected, "{dir} submitted");
        assert_eq!(done, expected, "{dir} done: a chunk was lost or double-counted");
        let hist_name = format!("ecc.{dir}.chunk_ns");
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == hist_name)
            .unwrap_or_else(|| panic!("missing histogram {hist_name}"));
        assert_eq!(hist.count, expected, "{dir} per-chunk timing samples");
        assert_eq!(snap.counter(&format!("ecc.{dir}.bytes")), REPS * DATA_LEN as u64);
    }
    assert_eq!(snap.counter("ecc.decode.corrected_bits"), 0);

    // The pool-width histogram must have seen exactly the oversubscribed
    // thread count we configured.
    let widths = snap.histograms.iter().find(|h| h.name == "ecc.codec.threads").unwrap();
    assert_eq!(widths.count, 1);
    assert_eq!(widths.sum, threads as u64);

    // Encode/decode wall-time spans: one per pass, strictly positive.
    for name in ["ecc.encode", "ecc.decode"] {
        let span = snap.span(name).unwrap_or_else(|| panic!("missing span {name}"));
        assert_eq!(span.count, REPS, "{name} span count");
        assert!(span.total_ns > 0, "{name} span recorded no time");
    }
}
