//! Lorenzo prediction over 1-, 2-, and 3-dimensional grids.
//!
//! SZ predicts each point from already-reconstructed neighbours (§2.1.1).
//! The Lorenzo predictor is the inclusion–exclusion sum over the corner of
//! previously visited neighbours; it is exact for locally (multi-)linear
//! fields, which is what makes smooth HPC data so compressible.
//!
//! Prediction always reads *reconstructed* values — the decompressor only
//! has those, and using them on both sides is what keeps the error bounded.

/// Grid dimensionality and shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridShape {
    /// Dimension extents, slowest-varying first. 1 ≤ len ≤ 3.
    pub dims: Vec<usize>,
}

impl GridShape {
    /// Validate and build a shape.
    pub fn new(dims: &[usize]) -> Option<GridShape> {
        if dims.is_empty() || dims.len() > 3 || dims.contains(&0) {
            return None;
        }
        Some(GridShape { dims: dims.to_vec() })
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the grid holds no elements (unreachable for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, matching the dims order.
    pub fn strides(&self) -> [usize; 3] {
        match self.dims.len() {
            1 => [0, 0, 1],
            2 => [0, self.dims[1], 1],
            _ => [self.dims[1] * self.dims[2], self.dims[2], 1],
        }
    }
}

/// Lorenzo predictor bound to a shape.
#[derive(Debug)]
pub struct Lorenzo {
    shape: GridShape,
    strides: [usize; 3],
}

impl Lorenzo {
    /// Create a predictor for the shape.
    pub fn new(shape: GridShape) -> Lorenzo {
        let strides = shape.strides();
        Lorenzo { shape, strides }
    }

    /// The bound shape.
    pub fn shape(&self) -> &GridShape {
        &self.shape
    }

    /// Predict element at linear index `idx` from `recon[..idx]`.
    ///
    /// `recon` must hold reconstructed values for all indices before `idx`
    /// in row-major order.
    #[inline]
    pub fn predict(&self, recon: &[f64], idx: usize) -> f64 {
        let d = self.shape.dims.len();
        match d {
            1 => {
                if idx >= 1 {
                    recon[idx - 1]
                } else {
                    0.0
                }
            }
            2 => {
                let cols = self.shape.dims[1];
                let (i, j) = (idx / cols, idx % cols);
                let mut p = 0.0;
                if i >= 1 {
                    p += recon[idx - self.strides[1]];
                }
                if j >= 1 {
                    p += recon[idx - 1];
                }
                if i >= 1 && j >= 1 {
                    p -= recon[idx - self.strides[1] - 1];
                }
                p
            }
            _ => {
                let sj = self.strides[1];
                let si = self.strides[0];
                let k = idx % sj;
                let j = (idx / sj) % self.shape.dims[1];
                let i = idx / si;
                let mut p = 0.0;
                if i >= 1 {
                    p += recon[idx - si];
                }
                if j >= 1 {
                    p += recon[idx - sj];
                }
                if k >= 1 {
                    p += recon[idx - 1];
                }
                if i >= 1 && j >= 1 {
                    p -= recon[idx - si - sj];
                }
                if i >= 1 && k >= 1 {
                    p -= recon[idx - si - 1];
                }
                if j >= 1 && k >= 1 {
                    p -= recon[idx - sj - 1];
                }
                if i >= 1 && j >= 1 && k >= 1 {
                    p += recon[idx - si - sj - 1];
                }
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(GridShape::new(&[]).is_none());
        assert!(GridShape::new(&[4, 0]).is_none());
        assert!(GridShape::new(&[2, 3, 4, 5]).is_none());
        assert_eq!(GridShape::new(&[2, 3, 4]).unwrap().len(), 24);
        assert!(!GridShape::new(&[1]).unwrap().is_empty());
    }

    #[test]
    fn lorenzo_1d_is_previous_value() {
        let p = Lorenzo::new(GridShape::new(&[5]).unwrap());
        let recon = [1.0, 2.0, 4.0, 8.0, 16.0];
        assert_eq!(p.predict(&recon, 0), 0.0);
        assert_eq!(p.predict(&recon, 3), 4.0);
    }

    #[test]
    fn lorenzo_2d_exact_on_bilinear_field() {
        // f(i,j) = 3i + 5j + 2 is exactly predicted everywhere after the
        // first row/column seeds are known.
        let shape = GridShape::new(&[8, 9]).unwrap();
        let p = Lorenzo::new(shape.clone());
        let mut recon = vec![0.0f64; shape.len()];
        for i in 0..8 {
            for j in 0..9 {
                recon[i * 9 + j] = 3.0 * i as f64 + 5.0 * j as f64 + 2.0;
            }
        }
        for i in 1..8 {
            for j in 1..9 {
                let idx = i * 9 + j;
                assert!((p.predict(&recon, idx) - recon[idx]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn lorenzo_3d_exact_on_trilinear_field() {
        let shape = GridShape::new(&[4, 5, 6]).unwrap();
        let p = Lorenzo::new(shape.clone());
        let mut recon = vec![0.0f64; shape.len()];
        for i in 0..4 {
            for j in 0..5 {
                for k in 0..6 {
                    recon[i * 30 + j * 6 + k] =
                        1.5 * i as f64 - 2.0 * j as f64 + 0.5 * k as f64 + 7.0;
                }
            }
        }
        for i in 1..4 {
            for j in 1..5 {
                for k in 1..6 {
                    let idx = i * 30 + j * 6 + k;
                    assert!((p.predict(&recon, idx) - recon[idx]).abs() < 1e-12, "({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn boundary_predictions_use_partial_stencils() {
        let shape = GridShape::new(&[3, 3]).unwrap();
        let p = Lorenzo::new(shape);
        let recon = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        assert_eq!(p.predict(&recon, 0), 0.0); // origin: nothing known
        assert_eq!(p.predict(&recon, 1), 1.0); // first row: left neighbour
        assert_eq!(p.predict(&recon, 3), 1.0); // first column: up neighbour
        assert_eq!(p.predict(&recon, 4), 4.0 + 2.0 - 1.0); // interior
    }
}

/// Predictor family: SZ 2.x chooses between the classic (first-order)
/// Lorenzo stencil and a second-order variant per dataset; this codec
/// samples both on the input and keeps the winner (recorded in the stream
/// header so the decoder agrees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// First-order Lorenzo (inclusion–exclusion over the unit corner).
    Lorenzo,
    /// Second-order Lorenzo (quadratic extrapolation; exact for locally
    /// quadratic fields, better on very smooth data).
    Lorenzo2,
}

impl PredictorKind {
    /// Stable header tag.
    pub fn tag(&self) -> u8 {
        match self {
            PredictorKind::Lorenzo => 0,
            PredictorKind::Lorenzo2 => 1,
        }
    }

    /// Parse a header tag.
    pub fn from_tag(tag: u8) -> Option<PredictorKind> {
        match tag {
            0 => Some(PredictorKind::Lorenzo),
            1 => Some(PredictorKind::Lorenzo2),
            _ => None,
        }
    }
}

/// A unified predictor dispatching on [`PredictorKind`].
#[derive(Debug)]
pub struct Predictor {
    kind: PredictorKind,
    lorenzo: Lorenzo,
}

impl Predictor {
    /// Bind a kind to a shape.
    pub fn new(kind: PredictorKind, shape: GridShape) -> Predictor {
        Predictor { kind, lorenzo: Lorenzo::new(shape) }
    }

    /// The bound kind.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Predict element `idx` from `recon[..idx]`.
    #[inline]
    pub fn predict(&self, recon: &[f64], idx: usize) -> f64 {
        match self.kind {
            PredictorKind::Lorenzo => self.lorenzo.predict(recon, idx),
            PredictorKind::Lorenzo2 => self.predict_lorenzo2(recon, idx),
        }
    }

    /// Second-order prediction along the fastest axis: quadratic
    /// extrapolation `3a − 3b + c` from the three previous samples in the
    /// same row, falling back to first-order Lorenzo near boundaries.
    /// (Real SZ's second-order stencil is multi-dimensional; the dominant
    /// term — and the compression benefit on smooth rows — comes from the
    /// fast axis, which is what this captures.)
    #[inline]
    fn predict_lorenzo2(&self, recon: &[f64], idx: usize) -> f64 {
        let shape = self.lorenzo.shape();
        // Shapes are validated non-empty on construction; an impossible
        // empty shape degrades to row length 1 rather than panicking.
        let fastest = shape.dims.last().copied().unwrap_or(1);
        let pos_in_row = idx % fastest;
        if pos_in_row >= 3 {
            3.0 * recon[idx - 1] - 3.0 * recon[idx - 2] + recon[idx - 3]
        } else {
            self.lorenzo.predict(recon, idx)
        }
    }
}

/// Choose the predictor with the smaller summed absolute residual over a
/// uniform sample of the data (the encoder-side "training" step SZ 2.x
/// performs before committing to a predictor).
pub fn select_predictor(data: &[f32], shape: &GridShape) -> PredictorKind {
    let n = data.len();
    if n < 16 {
        return PredictorKind::Lorenzo;
    }
    // Evaluate both stencils against the *original* data (a cheap proxy for
    // the reconstructed-neighbour residuals that decide code entropy).
    let as64: Vec<f64> = data.iter().map(|&x| x as f64).collect();
    let l1 = Predictor::new(PredictorKind::Lorenzo, shape.clone());
    let l2 = Predictor::new(PredictorKind::Lorenzo2, shape.clone());
    let step = (n / 4096).max(1);
    let (mut r1, mut r2) = (0.0f64, 0.0f64);
    for idx in (8..n).step_by(step) {
        let x = as64[idx];
        if !x.is_finite() {
            continue;
        }
        r1 += (x - l1.predict(&as64, idx)).abs();
        r2 += (x - l2.predict(&as64, idx)).abs();
    }
    if r2 < r1 {
        PredictorKind::Lorenzo2
    } else {
        PredictorKind::Lorenzo
    }
}

#[cfg(test)]
mod predictor_selection_tests {
    use super::*;

    #[test]
    fn kind_tags_round_trip() {
        for k in [PredictorKind::Lorenzo, PredictorKind::Lorenzo2] {
            assert_eq!(PredictorKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(PredictorKind::from_tag(9), None);
    }

    #[test]
    fn lorenzo2_is_exact_on_quadratic_rows() {
        let shape = GridShape::new(&[64]).unwrap();
        let p = Predictor::new(PredictorKind::Lorenzo2, shape);
        let recon: Vec<f64> =
            (0..64).map(|i| 0.5 * (i * i) as f64 + 3.0 * i as f64 + 7.0).collect();
        for idx in 3..64 {
            assert!((p.predict(&recon, idx) - recon[idx]).abs() < 1e-9, "idx {idx}");
        }
    }

    #[test]
    fn lorenzo1_is_not_exact_on_quadratics() {
        let shape = GridShape::new(&[64]).unwrap();
        let p = Predictor::new(PredictorKind::Lorenzo, shape);
        let recon: Vec<f64> = (0..64).map(|i| (i * i) as f64).collect();
        assert!((p.predict(&recon, 10) - recon[10]).abs() > 1.0);
    }

    #[test]
    fn boundary_falls_back_to_lorenzo() {
        let shape = GridShape::new(&[4, 8]).unwrap();
        let p2 = Predictor::new(PredictorKind::Lorenzo2, shape.clone());
        let p1 = Predictor::new(PredictorKind::Lorenzo, shape);
        let recon: Vec<f64> = (0..32).map(|i| i as f64).collect();
        // First three columns of every row use the first-order stencil.
        for row in 0..4 {
            for col in 0..3 {
                let idx = row * 8 + col;
                assert_eq!(p2.predict(&recon, idx), p1.predict(&recon, idx), "({row},{col})");
            }
        }
    }

    #[test]
    fn selection_prefers_lorenzo2_on_smooth_polynomials() {
        let data: Vec<f32> = (0..4096)
            .map(|i| {
                let x = i as f32 / 64.0;
                x * x * 0.1 + x
            })
            .collect();
        let shape = GridShape::new(&[4096]).unwrap();
        assert_eq!(select_predictor(&data, &shape), PredictorKind::Lorenzo2);
    }

    #[test]
    fn selection_prefers_lorenzo_on_noise() {
        let data: Vec<f32> = (0..4096u64)
            .map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f32) / 100.0)
            .collect();
        let shape = GridShape::new(&[4096]).unwrap();
        assert_eq!(select_predictor(&data, &shape), PredictorKind::Lorenzo);
    }

    #[test]
    fn tiny_inputs_default_to_lorenzo() {
        let shape = GridShape::new(&[4]).unwrap();
        assert_eq!(select_predictor(&[1.0, 2.0, 3.0, 4.0], &shape), PredictorKind::Lorenzo);
    }
}
