//! Error type for the SZ-like codec.

use arc_lossless::LosslessError;
use std::fmt;

/// Decompression and configuration failures.
///
/// The fault-injection harness maps these onto the paper's return-status
/// taxonomy (§4.2): [`SzError::Malformed`] and [`SzError::Lossless`] are
/// *Compressor Exception*; [`SzError::WorkBudgetExceeded`] is *Timeout*
/// (corrupted loop-controlling metadata sent the decoder into implausible
/// amounts of work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SzError {
    /// Structurally invalid stream or invalid configuration.
    Malformed(String),
    /// The back-end lossless stage failed.
    Lossless(LosslessError),
    /// The decode would exceed its work budget — the Timeout analogue.
    WorkBudgetExceeded {
        /// Work units the stream demanded.
        demanded: u64,
        /// Budget the caller allowed.
        budget: u64,
    },
}

impl fmt::Display for SzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SzError::Malformed(d) => write!(f, "malformed SZ stream: {d}"),
            SzError::Lossless(e) => write!(f, "SZ lossless stage: {e}"),
            SzError::WorkBudgetExceeded { demanded, budget } => {
                write!(f, "SZ decode work {demanded} exceeds budget {budget} (timeout)")
            }
        }
    }
}

impl std::error::Error for SzError {}

impl From<LosslessError> for SzError {
    fn from(e: LosslessError) -> Self {
        SzError::Lossless(e)
    }
}
