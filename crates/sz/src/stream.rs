//! Stream framing for the SZ-like codec.
//!
//! The header carries everything the decoder needs before it can trust the
//! body: mode, bound, dimensions, quantization bins, and the effective
//! absolute bound the encoder resolved. Header fields are validated
//! defensively — in the fault study these bytes get flipped, and a corrupted
//! dimension field is precisely how the paper's *Timeout* class arises
//! (§4.2: "corruptions in decompression loop controlling metadata").

use arc_lossless::bitio::{read_varint, write_varint};

use crate::error::SzError;
use crate::modes::ErrorBound;
use crate::predictor::PredictorKind;

/// Stream magic.
pub const MAGIC: &[u8; 4] = b"ASZ1";
/// Format version.
pub const VERSION: u8 = 1;

/// Parsed stream header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// The user's error-bound selection.
    pub bound: ErrorBound,
    /// Resolved absolute bound in the coding domain.
    pub abs_eb: f64,
    /// Whether the body is coded in the log domain (PWREL).
    pub log_domain: bool,
    /// Grid dimensions, slowest-varying first.
    pub dims: Vec<usize>,
    /// Quantization bin count.
    pub quant_bins: usize,
    /// Whether the body went through the ZStd-like final pass (§2.1.1's
    /// third step; disabling it is the error-propagation ablation in
    /// DESIGN.md §5).
    pub final_lossless: bool,
    /// Predictor the encoder committed to (chosen by sampling, SZ 2.x
    /// style); the decoder must use the same stencil.
    pub predictor: PredictorKind,
}

impl Header {
    /// Total element count.
    pub fn element_count(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product()
    }

    /// Serialize to bytes.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.bound.tag());
        out.extend_from_slice(&self.bound.param().to_le_bytes());
        out.extend_from_slice(&self.abs_eb.to_le_bytes());
        out.push(self.log_domain as u8);
        out.push(self.final_lossless as u8);
        out.push(self.predictor.tag());
        out.push(self.dims.len() as u8);
        for &d in &self.dims {
            write_varint(out, d as u64);
        }
        write_varint(out, self.quant_bins as u64);
    }

    /// Parse and validate a header, advancing `pos`.
    ///
    /// Total over arbitrary bytes: every field is bounds-checked before the
    /// slice it names is touched, so corruption surfaces as
    /// [`SzError::Malformed`], never a panic.
    pub fn read(bytes: &[u8], pos: &mut usize) -> Result<Header, SzError> {
        let need = |n: usize, pos: &usize| -> Result<(), SzError> {
            if *pos + n > bytes.len() {
                Err(SzError::Malformed("header truncated".into()))
            } else {
                Ok(())
            }
        };
        need(4, pos)?;
        if &bytes[*pos..*pos + 4] != MAGIC {
            return Err(SzError::Malformed("bad SZ magic".into()));
        }
        *pos += 4;
        need(2, pos)?;
        let version = bytes[*pos];
        *pos += 1;
        if version != VERSION {
            return Err(SzError::Malformed(format!("unsupported SZ version {version}")));
        }
        let tag = bytes[*pos];
        *pos += 1;
        need(16, pos)?;
        let param = le_f64(bytes, *pos);
        *pos += 8;
        let abs_eb = le_f64(bytes, *pos);
        *pos += 8;
        let bound = ErrorBound::from_tag(tag, param)?;
        if !abs_eb.is_finite() || abs_eb <= 0.0 {
            return Err(SzError::Malformed(format!("invalid effective bound {abs_eb}")));
        }
        need(3, pos)?;
        let log_domain = match bytes[*pos] {
            0 => false,
            1 => true,
            v => return Err(SzError::Malformed(format!("bad log-domain flag {v}"))),
        };
        *pos += 1;
        let final_lossless = match bytes[*pos] {
            0 => false,
            1 => true,
            v => return Err(SzError::Malformed(format!("bad lossless flag {v}"))),
        };
        *pos += 1;
        need(2, pos)?;
        let predictor = PredictorKind::from_tag(bytes[*pos])
            .ok_or_else(|| SzError::Malformed(format!("bad predictor tag {}", bytes[*pos])))?;
        *pos += 1;
        let ndims = bytes[*pos] as usize;
        *pos += 1;
        if ndims == 0 || ndims > 3 {
            return Err(SzError::Malformed(format!("unsupported dimensionality {ndims}")));
        }
        // arc-lint: bounded(ndims in 1..=3 checked above)
        let mut dims = Vec::with_capacity(ndims);
        let mut product: u64 = 1;
        for _ in 0..ndims {
            let d = read_varint(bytes, pos).map_err(SzError::from)?;
            if d == 0 {
                return Err(SzError::Malformed("zero-extent dimension".into()));
            }
            product = product
                .checked_mul(d)
                .ok_or_else(|| SzError::Malformed("dimension product overflow".into()))?;
            dims.push(d as usize);
        }
        let quant_bins = read_varint(bytes, pos).map_err(SzError::from)? as usize;
        if !(4..=1 << 24).contains(&quant_bins) {
            return Err(SzError::Malformed(format!("quantization bins {quant_bins} out of range")));
        }
        let _ = product;
        Ok(Header { bound, abs_eb, log_domain, dims, quant_bins, final_lossless, predictor })
    }
}

/// Clamped little-endian `f64` load: bytes past the end read as zero.
/// Callers bounds-check first (`need`), so the clamp is defense in depth
/// rather than format semantics.
fn le_f64(bytes: &[u8], pos: usize) -> f64 {
    let mut b = [0u8; 8];
    if let Some(src) = bytes.get(pos..pos + 8) {
        b.copy_from_slice(src);
    }
    f64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            bound: ErrorBound::Abs(0.1),
            abs_eb: 0.1,
            log_domain: false,
            dims: vec![100, 500, 500],
            quant_bins: 65536,
            final_lossless: true,
            predictor: PredictorKind::Lorenzo,
        }
    }

    #[test]
    fn round_trip() {
        let h = header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        let mut pos = 0;
        let parsed = Header::read(&buf, &mut pos).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(pos, buf.len());
        assert_eq!(parsed.element_count(), 25_000_000);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let h = header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(Header::read(&bad, &mut 0).is_err());
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(Header::read(&bad, &mut 0).is_err());
    }

    #[test]
    fn rejects_corrupt_fields() {
        let h = header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        // NaN effective bound.
        let mut bad = buf.clone();
        bad[14..22].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(Header::read(&bad, &mut 0).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..buf.len() {
            assert!(Header::read(&buf[..cut], &mut 0).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupted_dims_are_caught_or_bounded() {
        // Flipping dimension bytes may yield a huge-but-parseable product;
        // parsing succeeds, and the decode-budget layer handles the rest.
        let h = header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let _ = Header::read(&bad, &mut 0); // must not panic
        }
    }
}
