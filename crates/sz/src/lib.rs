//! # arc-sz — SZ-like error-bounded lossy compressor
//!
//! A from-scratch reproduction of SZ's published pipeline (§2.1.1 of the ARC
//! paper): Lorenzo prediction over reconstructed neighbours, linear-scale
//! quantization against a per-mode error bound, Huffman coding of the
//! quantization bins, and a ZStd-like lossless final pass. Three error-bound
//! modes are supported: absolute (`SZ-ABS`), point-wise relative
//! (`SZ-PWREL`, via log-domain coding), and PSNR-targeted (`SZ-PSNR`).
//!
//! The stream is deliberately *serial* — every value's reconstruction
//! depends on its predecessors and on tables at the head of the stream.
//! That is the structural property behind the paper's fault-injection
//! finding that a single flipped bit corrupts ~10% of decompressed values
//! on average; this crate reproduces the structure, and `arc-faultsim`
//! reproduces the finding.
//!
//! ```
//! use arc_sz::{compress, decompress, ErrorBound, SzConfig};
//!
//! let field: Vec<f32> = (0..32 * 32)
//!     .map(|i| ((i / 32) as f32 * 0.1).sin() + ((i % 32) as f32 * 0.2).cos())
//!     .collect();
//! let cfg = SzConfig { bound: ErrorBound::Abs(1e-3), ..Default::default() };
//! let packed = compress(&field, &[32, 32], &cfg).unwrap();
//! let out = decompress(&packed).unwrap();
//! assert_eq!(out.dims, vec![32, 32]);
//! for (a, b) in field.iter().zip(&out.data) {
//!     assert!((a - b).abs() <= 1e-3 + 1e-7);
//! }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod modes;
pub mod predictor;
pub mod stream;

pub use error::SzError;
pub use modes::{resolve, BoundPlan, ErrorBound};
pub use predictor::{select_predictor, GridShape, Lorenzo, Predictor, PredictorKind};

use arc_lossless::bitio::{read_varint, write_varint};
use arc_lossless::huffman::{huffman_decode_block, huffman_encode_block};
use stream::Header;

/// Compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzConfig {
    /// Error-bounding mode and parameter.
    pub bound: ErrorBound,
    /// Number of quantization bins (SZ's default is 65536).
    pub quant_bins: usize,
    /// Run the ZStd-like final lossless pass (§2.1.1's third step).
    /// Disabling it trades compression ratio for a shorter error-propagation
    /// span — the ablation DESIGN.md §5 calls out.
    pub final_lossless: bool,
    /// Predictor choice; `None` samples the data and picks the better
    /// stencil (SZ 2.x behaviour).
    pub predictor: Option<PredictorKind>,
}

impl Default for SzConfig {
    fn default() -> Self {
        SzConfig {
            bound: ErrorBound::Abs(1e-3),
            quant_bins: 65536,
            final_lossless: true,
            predictor: None,
        }
    }
}

/// Decode-side resource limits. The element budget is the Timeout guard: a
/// corrupted dimension field that demands implausible work must surface as
/// [`SzError::WorkBudgetExceeded`] rather than grinding "near infinitely"
/// (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum output elements the caller will accept.
    pub max_elements: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits { max_elements: 1 << 31 }
    }
}

/// A decompressed dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SzDecoded {
    /// Values in row-major order.
    pub data: Vec<f32>,
    /// Grid dimensions, slowest-varying first.
    pub dims: Vec<usize>,
}

/// Sentinel quantization code marking an unpredictable (literal) value.
const CODE_LITERAL: u32 = 0;

/// Compress `data` (row-major, `dims` slowest-first) under `cfg`.
pub fn compress(data: &[f32], dims: &[usize], cfg: &SzConfig) -> Result<Vec<u8>, SzError> {
    let _span = arc_telemetry::span("sz.compress");
    arc_telemetry::counter_add("sz.compress.elements", data.len() as u64);
    let shape =
        GridShape::new(dims).ok_or_else(|| SzError::Malformed(format!("invalid dims {dims:?}")))?;
    if shape.len() != data.len() {
        return Err(SzError::Malformed(format!(
            "dims {:?} describe {} elements but {} provided",
            dims,
            shape.len(),
            data.len()
        )));
    }
    if cfg.quant_bins < 4 || cfg.quant_bins > 1 << 24 {
        return Err(SzError::Malformed(format!("quant_bins {} out of range", cfg.quant_bins)));
    }
    let (mut dmin, mut dmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in data {
        if x.is_finite() {
            dmin = dmin.min(x as f64);
            dmax = dmax.max(x as f64);
        }
    }
    if !dmin.is_finite() {
        (dmin, dmax) = (0.0, 0.0);
    }
    let plan = resolve(cfg.bound, dmin, dmax)?;
    let eb = plan.abs_eb;
    let rel_eps = match cfg.bound {
        ErrorBound::PwRel(e) => e,
        _ => 0.0,
    };
    let n = data.len();
    let kind = cfg.predictor.unwrap_or_else(|| select_predictor(data, &shape));
    let predictor = Predictor::new(kind, shape.clone());
    let mid = (cfg.quant_bins / 2) as i64;

    let mut codes: Vec<u32> = Vec::with_capacity(n);
    let mut literals: Vec<f32> = Vec::new();
    let mut recon = vec![0.0f64; n];
    let mut zero_mask = vec![0u8; if plan.log_domain { n.div_ceil(8) } else { 0 }];
    let mut sign_mask = vec![0u8; if plan.log_domain { n.div_ceil(8) } else { 0 }];

    // The prediction/quantization stage is one serial loop: each element's
    // quantization depends on the reconstructed neighborhood, so the two
    // sub-steps cannot be timed apart without breaking the data flow.
    let stage = arc_telemetry::span("predict_quantize");
    for idx in 0..n {
        let x = data[idx];
        let pred = predictor.predict(&recon, idx);
        // Transformed-domain target value.
        let (v, masked_zero) = if plan.log_domain {
            if x == 0.0 {
                zero_mask[idx / 8] |= 1 << (idx % 8);
                (pred, true) // costs a zero-quantum code, reconstructs to pred
            } else {
                if x < 0.0 {
                    sign_mask[idx / 8] |= 1 << (idx % 8);
                }
                ((x.abs() as f64).ln(), false)
            }
        } else {
            (x as f64, false)
        };
        let diff = v - pred;
        let q = (diff / (2.0 * eb)).round();
        let predictable = q.is_finite() && q >= -(mid as f64) && q <= (mid - 1) as f64;
        let mut accept = false;
        let mut q_recon = 0.0f64;
        if predictable {
            let qi = q as i64;
            q_recon = pred + qi as f64 * 2.0 * eb;
            if masked_zero {
                accept = true; // output is exactly 0.0 regardless
            } else {
                // Verify against the *final f32 output* the decoder produces.
                let out = if plan.log_domain {
                    let mag = q_recon.exp() as f32;
                    if x < 0.0 {
                        -mag
                    } else {
                        mag
                    }
                } else {
                    q_recon as f32
                };
                accept = if plan.log_domain {
                    (out as f64 - x as f64).abs() <= rel_eps * (x as f64).abs()
                } else {
                    (out as f64 - x as f64).abs() <= eb
                };
            }
        }
        if accept {
            let qi = q as i64;
            codes.push((qi + mid + 1) as u32);
            recon[idx] = q_recon;
        } else {
            codes.push(CODE_LITERAL);
            literals.push(x);
            recon[idx] = if !x.is_finite() {
                0.0
            } else if plan.log_domain {
                if x == 0.0 {
                    pred
                } else {
                    (x.abs() as f64).ln()
                }
            } else {
                x as f64
            };
        }
    }

    drop(stage);
    arc_telemetry::counter_add("sz.compress.literals", literals.len() as u64);

    // Assemble the body, then run the ZStd-like final pass over it (§2.1.1's
    // third step).
    let mut body = Vec::new();
    let code_block = {
        let _stage = arc_telemetry::span("huffman");
        huffman_encode_block(&codes, cfg.quant_bins + 1).map_err(SzError::Lossless)?
    };
    write_varint(&mut body, code_block.len() as u64);
    body.extend_from_slice(&code_block);
    write_varint(&mut body, literals.len() as u64);
    for lit in &literals {
        body.extend_from_slice(&lit.to_le_bytes());
    }
    if plan.log_domain {
        body.extend_from_slice(&zero_mask);
        body.extend_from_slice(&sign_mask);
    }
    let packed_body = if cfg.final_lossless {
        let _stage = arc_telemetry::span("zstd");
        arc_lossless::zstd_like::compress(&body)
    } else {
        body
    };

    let header = Header {
        bound: cfg.bound,
        abs_eb: eb,
        log_domain: plan.log_domain,
        dims: dims.to_vec(),
        quant_bins: cfg.quant_bins,
        final_lossless: cfg.final_lossless,
        predictor: kind,
    };
    let mut out = Vec::with_capacity(packed_body.len() + 64);
    header.write(&mut out);
    write_varint(&mut out, packed_body.len() as u64);
    out.extend_from_slice(&packed_body);
    Ok(out)
}

/// Decompress with default limits.
pub fn decompress(bytes: &[u8]) -> Result<SzDecoded, SzError> {
    decompress_with_limits(bytes, &DecodeLimits::default())
}

/// Decompress with explicit resource limits.
pub fn decompress_with_limits(bytes: &[u8], limits: &DecodeLimits) -> Result<SzDecoded, SzError> {
    let _span = arc_telemetry::span("sz.decompress");
    let mut pos = 0usize;
    let header = Header::read(bytes, &mut pos)?;
    let n64 = header.element_count();
    if n64 > limits.max_elements {
        return Err(SzError::WorkBudgetExceeded { demanded: n64, budget: limits.max_elements });
    }
    let n = n64 as usize;
    let body_len = read_varint(bytes, &mut pos)? as usize;
    let end = pos
        .checked_add(body_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| SzError::Malformed("body length out of range".into()))?;
    let body = if header.final_lossless {
        let _stage = arc_telemetry::span("zstd");
        // A legitimate body holds at most ~8 bytes per element (4 code-block
        // + 4 literal) plus masks and table framing; budget generously so a
        // corrupt inner length field cannot demand an unbounded allocation.
        let body_budget = n64.saturating_mul(16).saturating_add(1 << 16);
        arc_lossless::zstd_like::decompress_with_limit(&bytes[pos..end], body_budget)?
    } else {
        bytes[pos..end].to_vec()
    };

    // Body parsing is deliberately permissive from here on: real SZ's
    // decoder marches through whatever bits it is handed, so corruption in
    // the entropy-coded body yields *wrong values*, not exceptions — the
    // paper's dominant "Completed" outcome (§4.2). Structural damage the
    // decoder cannot march past (header, section framing) still raises.
    let mut bpos = 0usize;
    let code_block_len = read_varint(&body, &mut bpos)? as usize;
    let code_end = bpos
        .checked_add(code_block_len)
        .filter(|&e| e <= body.len())
        .ok_or_else(|| SzError::Malformed("code block length out of range".into()))?;
    let mut cpos = bpos;
    // A corrupt Huffman payload decodes to however many symbols it can;
    // missing codes fall back to the zero-quantum bin below.
    let mut codes = {
        let _stage = arc_telemetry::span("huffman");
        huffman_decode_block(&body, &mut cpos).unwrap_or_default()
    };
    bpos = code_end;
    let mid = (header.quant_bins / 2) as i64;
    let zero_quantum_code = (mid + 1) as u32;
    // arc-lint: bounded(n <= limits.max_elements checked at header parse)
    codes.resize(n, zero_quantum_code);
    let n_literals = read_varint(&body, &mut bpos)? as usize;
    // There is one literal per unpredictable element at most; a corrupt
    // count exceeding the element total is structural damage, and the
    // byte-length check below stops it from over-reading the body.
    if n_literals as u64 > n64 {
        return Err(SzError::Malformed(format!(
            "literal count {n_literals} exceeds element count {n64}"
        )));
    }
    let lit_end = bpos
        .checked_add(
            n_literals
                .checked_mul(4)
                .ok_or_else(|| SzError::Malformed("literal count overflow".into()))?,
        )
        .filter(|&e| e <= body.len())
        .ok_or_else(|| SzError::Malformed("literal section out of range".into()))?;
    let mut literals = Vec::with_capacity(n_literals.min(1 << 22));
    for chunk in body[bpos..lit_end].chunks_exact(4) {
        let mut b = [0u8; 4];
        b.copy_from_slice(chunk);
        literals.push(f32::from_le_bytes(b));
    }
    bpos = lit_end;
    let (zero_mask, sign_mask) = if header.log_domain {
        let mask_len = n.div_ceil(8);
        let zend = bpos + mask_len;
        let send = zend + mask_len;
        if send > body.len() {
            return Err(SzError::Malformed("mask sections truncated".into()));
        }
        let z = body[bpos..zend].to_vec();
        let s = body[zend..send].to_vec();
        (z, s)
    } else {
        (Vec::new(), Vec::new())
    };

    let shape = GridShape::new(&header.dims)
        .ok_or_else(|| SzError::Malformed("invalid dims in header".into()))?;
    let predictor = Predictor::new(header.predictor, shape);
    let eb = header.abs_eb;
    // arc-lint: bounded(n <= limits.max_elements checked at header parse)
    let mut recon = vec![0.0f64; n];
    // arc-lint: bounded(n <= limits.max_elements checked at header parse)
    let mut out = vec![0.0f32; n];
    let mut lit_cursor = 0usize;
    let _stage = arc_telemetry::span("reconstruct");
    for idx in 0..n {
        let pred = predictor.predict(&recon, idx);
        let code = codes[idx];
        let is_zero = header.log_domain && (zero_mask[idx / 8] >> (idx % 8)) & 1 == 1;
        let negative = header.log_domain && (sign_mask[idx / 8] >> (idx % 8)) & 1 == 1;
        if code == CODE_LITERAL {
            // An exhausted literal stream (corruption inflated the literal
            // count the codes imply) reads as zeros — garbage, not a crash.
            let x = literals.get(lit_cursor).copied().unwrap_or(0.0);
            lit_cursor += 1;
            recon[idx] = if !x.is_finite() {
                0.0
            } else if header.log_domain {
                if x == 0.0 {
                    pred
                } else {
                    (x.abs() as f64).ln()
                }
            } else {
                x as f64
            };
            out[idx] = x;
        } else {
            // Corrupt codes beyond the bin range clamp to the edge bins.
            let qi = (code as i64 - 1 - mid).clamp(-mid, mid - 1);
            let r = pred + qi as f64 * 2.0 * eb;
            recon[idx] = r;
            out[idx] = if is_zero {
                0.0
            } else if header.log_domain {
                let mag = r.exp() as f32;
                if negative {
                    -mag
                } else {
                    mag
                }
            } else {
                r as f32
            };
        }
    }
    Ok(SzDecoded { data: out, dims: header.dims })
}

/// Convenience: compression ratio of a compressed buffer against its source.
pub fn compression_ratio(original_elements: usize, compressed_len: usize) -> f64 {
    if compressed_len == 0 {
        return f64::INFINITY;
    }
    (original_elements * std::mem::size_of::<f32>()) as f64 / compressed_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_2d(rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| {
                let r = (i / cols) as f32;
                let c = (i % cols) as f32;
                (r * 0.05).sin() * (c * 0.03).cos() * 10.0 + 0.1 * r
            })
            .collect()
    }

    fn max_abs_err(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn abs_mode_respects_bound() {
        let data = smooth_2d(64, 64);
        for eb in [1.0, 0.1, 1e-3, 1e-5] {
            let cfg = SzConfig { bound: ErrorBound::Abs(eb), ..Default::default() };
            let c = compress(&data, &[64, 64], &cfg).unwrap();
            let d = decompress(&c).unwrap();
            assert_eq!(d.dims, vec![64, 64]);
            assert!(max_abs_err(&data, &d.data) <= eb, "eb={eb}");
        }
    }

    #[test]
    fn pwrel_mode_respects_relative_bound() {
        let data: Vec<f32> = (1..=4096).map(|i| (i as f32 * 0.01).exp() % 1000.0 + 0.001).collect();
        let eps = 0.05;
        let cfg = SzConfig { bound: ErrorBound::PwRel(eps), ..Default::default() };
        let c = compress(&data, &[4096], &cfg).unwrap();
        let d = decompress(&c).unwrap();
        for (x, y) in data.iter().zip(&d.data) {
            let rel = (*x as f64 - *y as f64).abs() / (*x as f64).abs();
            assert!(rel <= eps + 1e-9, "x={x} y={y} rel={rel}");
        }
    }

    #[test]
    fn pwrel_preserves_zeros_and_signs() {
        let data = vec![0.0f32, -1.5, 2.5, 0.0, -0.25, 100.0, 0.0, -1e-30];
        let cfg = SzConfig { bound: ErrorBound::PwRel(0.01), ..Default::default() };
        let c = compress(&data, &[8], &cfg).unwrap();
        let d = decompress(&c).unwrap();
        for (x, y) in data.iter().zip(&d.data) {
            assert_eq!(x.signum(), y.signum(), "{x} vs {y}");
            if *x == 0.0 {
                assert_eq!(*y, 0.0);
            }
        }
    }

    #[test]
    fn psnr_mode_meets_target() {
        let data = smooth_2d(100, 100);
        let target = 60.0;
        let cfg = SzConfig { bound: ErrorBound::Psnr(target), ..Default::default() };
        let c = compress(&data, &[100, 100], &cfg).unwrap();
        let d = decompress(&c).unwrap();
        let n = data.len() as f64;
        let mse: f64 =
            data.iter().zip(&d.data).map(|(x, y)| (*x as f64 - *y as f64).powi(2)).sum::<f64>() / n;
        let range = {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &x in &data {
                lo = lo.min(x as f64);
                hi = hi.max(x as f64);
            }
            hi - lo
        };
        let psnr = 20.0 * (range / mse.sqrt()).log10();
        assert!(psnr >= target, "psnr {psnr} < {target}");
    }

    #[test]
    fn smooth_data_compresses_substantially() {
        let data = smooth_2d(256, 256);
        let cfg = SzConfig { bound: ErrorBound::Abs(0.01), ..Default::default() };
        let c = compress(&data, &[256, 256], &cfg).unwrap();
        let cr = compression_ratio(data.len(), c.len());
        assert!(cr > 4.0, "compression ratio only {cr}");
    }

    #[test]
    fn looser_bound_compresses_more() {
        let data = smooth_2d(128, 128);
        let tight = compress(
            &data,
            &[128, 128],
            &SzConfig { bound: ErrorBound::Abs(1e-5), ..Default::default() },
        )
        .unwrap();
        let loose = compress(
            &data,
            &[128, 128],
            &SzConfig { bound: ErrorBound::Abs(0.5), ..Default::default() },
        )
        .unwrap();
        assert!(loose.len() < tight.len());
    }

    #[test]
    fn three_dimensional_round_trip() {
        let (a, b, c3) = (16, 24, 20);
        let data: Vec<f32> = (0..a * b * c3)
            .map(|i| {
                let z = i / (b * c3);
                let y = (i / c3) % b;
                let x = i % c3;
                (x as f32 * 0.1) + (y as f32 * 0.2).sin() + (z as f32 * 0.3).cos()
            })
            .collect();
        let cfg = SzConfig { bound: ErrorBound::Abs(1e-3), ..Default::default() };
        let packed = compress(&data, &[a, b, c3], &cfg).unwrap();
        let d = decompress(&packed).unwrap();
        assert_eq!(d.dims, vec![a, b, c3]);
        assert!(max_abs_err(&data, &d.data) <= 1e-3);
    }

    #[test]
    fn random_noise_round_trips_within_bound() {
        // Unpredictable data mostly takes the literal path; bound still holds.
        let data: Vec<f32> = (0..2000u64)
            .map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as f32 / 1e9) * 100.0 - 50.0)
            .collect();
        let cfg = SzConfig { bound: ErrorBound::Abs(1e-4), ..Default::default() };
        let c = compress(&data, &[2000], &cfg).unwrap();
        let d = decompress(&c).unwrap();
        assert!(max_abs_err(&data, &d.data) <= 1e-4);
    }

    #[test]
    fn nonfinite_values_survive_exactly() {
        let data = vec![1.0f32, f32::NAN, f32::INFINITY, -2.0, f32::NEG_INFINITY, 3.0];
        let cfg = SzConfig { bound: ErrorBound::Abs(0.1), ..Default::default() };
        let c = compress(&data, &[6], &cfg).unwrap();
        let d = decompress(&c).unwrap();
        assert!(d.data[1].is_nan());
        assert_eq!(d.data[2], f32::INFINITY);
        assert_eq!(d.data[4], f32::NEG_INFINITY);
        assert!((d.data[0] - 1.0).abs() <= 0.1);
        assert!((d.data[5] - 3.0).abs() <= 0.1);
    }

    #[test]
    fn dims_mismatch_rejected() {
        let cfg = SzConfig::default();
        assert!(compress(&[1.0; 10], &[3, 4], &cfg).is_err());
        assert!(compress(&[1.0; 12], &[3, 4], &cfg).is_ok());
        assert!(compress(&[1.0; 12], &[0, 12], &cfg).is_err());
        assert!(compress(&[1.0; 12], &[2, 2, 3, 1], &cfg).is_err());
    }

    #[test]
    fn decode_budget_triggers_timeout_class() {
        let data = smooth_2d(32, 32);
        let cfg = SzConfig { bound: ErrorBound::Abs(0.01), ..Default::default() };
        let c = compress(&data, &[32, 32], &cfg).unwrap();
        let limits = DecodeLimits { max_elements: 100 };
        match decompress_with_limits(&c, &limits) {
            Err(SzError::WorkBudgetExceeded { demanded, budget }) => {
                assert_eq!(demanded, 1024);
                assert_eq!(budget, 100);
            }
            other => panic!("expected timeout class, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_stream_never_panics() {
        let data = smooth_2d(48, 48);
        let cfg = SzConfig { bound: ErrorBound::Abs(0.05), ..Default::default() };
        let c = compress(&data, &[48, 48], &cfg).unwrap();
        for i in (0..c.len()).step_by(7) {
            let mut bad = c.clone();
            bad[i] ^= 1 << (i % 8);
            let _ = decompress_with_limits(&bad, &DecodeLimits { max_elements: 1 << 22 });
        }
    }

    #[test]
    fn truncation_is_detected() {
        let data = smooth_2d(16, 16);
        let c = compress(&data, &[16, 16], &SzConfig::default()).unwrap();
        for cut in [0usize, 4, 10, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn single_element_and_tiny_grids() {
        let cfg = SzConfig { bound: ErrorBound::Abs(0.01), ..Default::default() };
        for dims in [vec![1usize], vec![1, 1], vec![1, 1, 1], vec![2, 1, 3]] {
            let n: usize = dims.iter().product();
            let data: Vec<f32> = (0..n).map(|i| i as f32 * 1.5).collect();
            let c = compress(&data, &dims, &cfg).unwrap();
            let d = decompress(&c).unwrap();
            assert_eq!(d.dims, dims);
            assert!(max_abs_err(&data, &d.data) <= 0.01);
        }
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 3.0).collect()
    }

    #[test]
    fn no_lossless_pass_round_trips() {
        let data = smooth(64 * 64);
        let cfg =
            SzConfig { final_lossless: false, bound: ErrorBound::Abs(1e-3), ..Default::default() };
        let c = compress(&data, &[64, 64], &cfg).unwrap();
        let d = decompress(&c).unwrap();
        for (a, b) in data.iter().zip(&d.data) {
            assert!((a - b).abs() <= 1e-3 + 1e-7);
        }
    }

    #[test]
    fn lossless_pass_improves_ratio() {
        let data = smooth(128 * 128);
        let with = compress(
            &data,
            &[128, 128],
            &SzConfig { bound: ErrorBound::Abs(1e-2), ..Default::default() },
        )
        .unwrap();
        let without = compress(
            &data,
            &[128, 128],
            &SzConfig { bound: ErrorBound::Abs(1e-2), final_lossless: false, ..Default::default() },
        )
        .unwrap();
        assert!(with.len() < without.len(), "{} vs {}", with.len(), without.len());
    }

    #[test]
    fn flag_survives_in_header() {
        let data = smooth(256);
        for fl in [true, false] {
            let cfg = SzConfig { final_lossless: fl, ..Default::default() };
            let c = compress(&data, &[256], &cfg).unwrap();
            let mut pos = 0;
            let h = stream::Header::read(&c, &mut pos).unwrap();
            assert_eq!(h.final_lossless, fl);
        }
    }
}

#[cfg(test)]
mod predictor_integration_tests {
    use super::*;

    #[test]
    fn forced_predictors_both_round_trip_within_bound() {
        let data: Vec<f32> = (0..96 * 96)
            .map(|i| {
                let x = (i % 96) as f32 / 12.0;
                x * x * 0.05 + ((i / 96) as f32 * 0.1).sin()
            })
            .collect();
        for kind in [PredictorKind::Lorenzo, PredictorKind::Lorenzo2] {
            let cfg = SzConfig {
                bound: ErrorBound::Abs(1e-4),
                predictor: Some(kind),
                ..Default::default()
            };
            let c = compress(&data, &[96, 96], &cfg).unwrap();
            let d = decompress(&c).unwrap();
            for (a, b) in data.iter().zip(&d.data) {
                assert!((a - b).abs() <= 1e-4, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn auto_selection_never_loses_to_worst_choice() {
        // The auto-picked predictor must compress at least as well as the
        // worse of the two forced choices.
        let data: Vec<f32> = (0..8192)
            .map(|i| {
                let x = i as f32 / 100.0;
                x * x * 0.01 + x * 0.3
            })
            .collect();
        let size_of = |p: Option<PredictorKind>| {
            let cfg = SzConfig { bound: ErrorBound::Abs(1e-4), predictor: p, ..Default::default() };
            compress(&data, &[8192], &cfg).unwrap().len()
        };
        let auto = size_of(None);
        let l1 = size_of(Some(PredictorKind::Lorenzo));
        let l2 = size_of(Some(PredictorKind::Lorenzo2));
        assert!(auto <= l1.max(l2), "auto {auto} vs l1 {l1} / l2 {l2}");
    }

    #[test]
    fn lorenzo2_wins_on_smooth_quadratic_signals() {
        let data: Vec<f32> = (0..16384)
            .map(|i| {
                let x = i as f32 / 200.0;
                x * x
            })
            .collect();
        let shape = GridShape::new(&[16384]).unwrap();
        assert_eq!(select_predictor(&data, &shape), PredictorKind::Lorenzo2);
        let cfg2 = SzConfig {
            bound: ErrorBound::Abs(1e-3),
            predictor: Some(PredictorKind::Lorenzo2),
            ..Default::default()
        };
        let cfg1 = SzConfig {
            bound: ErrorBound::Abs(1e-3),
            predictor: Some(PredictorKind::Lorenzo),
            ..Default::default()
        };
        let s2 = compress(&data, &[16384], &cfg2).unwrap().len();
        let s1 = compress(&data, &[16384], &cfg1).unwrap().len();
        assert!(s2 <= s1, "lorenzo2 {s2} vs lorenzo {s1}");
    }
}
