//! Error-bounding modes of the SZ-like compressor.
//!
//! The paper exercises three SZ modes (§2.1.1): absolute (SZ-ABS),
//! point-wise relative (SZ-PWREL), and PSNR-targeted (SZ-PSNR). Internally
//! all three reduce to an absolute bound: PWREL compresses in the log domain
//! (SZ 2.x's own strategy) and PSNR derives an absolute bound from the data
//! range and the uniform-quantization noise model.

use crate::error::SzError;

/// User-facing error-bound selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute: every value may deviate at most `ε`.
    Abs(f64),
    /// Point-wise relative: value `x` may deviate at most `ε·|x|`.
    PwRel(f64),
    /// Peak signal-to-noise ratio target in dB.
    Psnr(f64),
}

impl ErrorBound {
    /// Validate user input.
    pub fn validate(&self) -> Result<(), SzError> {
        let ok = match *self {
            ErrorBound::Abs(e) => e.is_finite() && e > 0.0,
            ErrorBound::PwRel(e) => e.is_finite() && e > 0.0 && e < 1.0e6,
            ErrorBound::Psnr(p) => p.is_finite() && p > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(SzError::Malformed(format!("invalid error bound {self:?}")))
        }
    }

    /// Stable discriminant for the stream header.
    pub fn tag(&self) -> u8 {
        match self {
            ErrorBound::Abs(_) => 0,
            ErrorBound::PwRel(_) => 1,
            ErrorBound::Psnr(_) => 2,
        }
    }

    /// The bound's scalar parameter.
    pub fn param(&self) -> f64 {
        match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::PwRel(e) => e,
            ErrorBound::Psnr(p) => p,
        }
    }

    /// Reconstruct from header fields.
    pub fn from_tag(tag: u8, param: f64) -> Result<ErrorBound, SzError> {
        let b = match tag {
            0 => ErrorBound::Abs(param),
            1 => ErrorBound::PwRel(param),
            2 => ErrorBound::Psnr(param),
            _ => return Err(SzError::Malformed(format!("unknown error-bound tag {tag}"))),
        };
        b.validate()?;
        Ok(b)
    }
}

/// The internal plan the codec executes for a given mode and dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundPlan {
    /// Absolute bound applied in the (possibly transformed) domain.
    pub abs_eb: f64,
    /// Whether values are compressed as `ln(|x|)` with sign/zero side data.
    pub log_domain: bool,
}

/// Resolve a user bound against the dataset statistics.
///
/// * ABS uses `ε` directly.
/// * PWREL maps to an absolute bound of `ln(1 + ε)` in the log domain, which
///   guarantees `|x̂ − x| ≤ ε·|x|`.
/// * PSNR computes the bound from the value range: uniform error in
///   `[−e, e]` has RMSE `e/√3`, so a target PSNR `P` over range `R` permits
///   `e = √3 · R · 10^(−P/20)`.
pub fn resolve(bound: ErrorBound, data_min: f64, data_max: f64) -> Result<BoundPlan, SzError> {
    bound.validate()?;
    match bound {
        ErrorBound::Abs(e) => Ok(BoundPlan { abs_eb: e, log_domain: false }),
        ErrorBound::PwRel(e) => Ok(BoundPlan { abs_eb: (1.0 + e).ln(), log_domain: true }),
        ErrorBound::Psnr(p) => {
            let range = (data_max - data_min).abs();
            let range = if range > 0.0 { range } else { data_max.abs().max(1.0) * 1e-9 };
            let rmse_target = range / 10f64.powf(p / 20.0);
            Ok(BoundPlan { abs_eb: 3f64.sqrt() * rmse_target, log_domain: false })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ErrorBound::Abs(0.1).validate().is_ok());
        assert!(ErrorBound::Abs(0.0).validate().is_err());
        assert!(ErrorBound::Abs(f64::NAN).validate().is_err());
        assert!(ErrorBound::PwRel(-0.5).validate().is_err());
        assert!(ErrorBound::Psnr(90.0).validate().is_ok());
        assert!(ErrorBound::Psnr(-3.0).validate().is_err());
    }

    #[test]
    fn tag_round_trip() {
        for b in [ErrorBound::Abs(0.25), ErrorBound::PwRel(0.01), ErrorBound::Psnr(64.0)] {
            let r = ErrorBound::from_tag(b.tag(), b.param()).unwrap();
            assert_eq!(r, b);
        }
        assert!(ErrorBound::from_tag(9, 1.0).is_err());
    }

    #[test]
    fn abs_passthrough() {
        let p = resolve(ErrorBound::Abs(0.1), -5.0, 5.0).unwrap();
        assert_eq!(p.abs_eb, 0.1);
        assert!(!p.log_domain);
    }

    #[test]
    fn pwrel_uses_log_domain() {
        let p = resolve(ErrorBound::PwRel(0.1), 0.0, 1.0).unwrap();
        assert!(p.log_domain);
        assert!((p.abs_eb - 0.1f64.ln_1p()).abs() < 1e-12);
    }

    #[test]
    fn psnr_bound_scales_with_range_and_target() {
        let a = resolve(ErrorBound::Psnr(90.0), 0.0, 1.0).unwrap().abs_eb;
        let b = resolve(ErrorBound::Psnr(90.0), 0.0, 100.0).unwrap().abs_eb;
        assert!((b / a - 100.0).abs() < 1e-9);
        let c = resolve(ErrorBound::Psnr(70.0), 0.0, 1.0).unwrap().abs_eb;
        assert!((c / a - 10.0).abs() < 1e-9, "20 dB = 10× looser bound");
    }

    #[test]
    fn psnr_constant_data_gets_tiny_positive_bound() {
        let p = resolve(ErrorBound::Psnr(90.0), 3.0, 3.0).unwrap();
        assert!(p.abs_eb > 0.0);
    }
}
