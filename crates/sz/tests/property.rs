//! Property-based tests for the SZ-like codec: the error bound is a hard
//! guarantee for arbitrary finite inputs, and the decoder never panics.

use proptest::prelude::*;

use arc_sz::{compress, decompress, decompress_with_limits, DecodeLimits, ErrorBound, SzConfig};

fn arb_grid() -> impl Strategy<Value = (Vec<usize>, Vec<f32>)> {
    (1usize..=3).prop_flat_map(|d| proptest::collection::vec(1usize..24, d)).prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        (Just(dims), proptest::collection::vec(-1e6f32..1e6f32, n..=n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn abs_bound_holds_for_arbitrary_finite_data(
        (dims, data) in arb_grid(),
        eb in prop_oneof![Just(1e-4f64), Just(1e-2), Just(1.0), Just(100.0)],
    ) {
        let cfg = SzConfig { bound: ErrorBound::Abs(eb), ..Default::default() };
        let packed = compress(&data, &dims, &cfg).unwrap();
        let out = decompress(&packed).unwrap();
        prop_assert_eq!(&out.dims, &dims);
        for (a, b) in data.iter().zip(&out.data) {
            prop_assert!((*a as f64 - *b as f64).abs() <= eb, "{a} vs {b} (eb {eb})");
        }
    }

    #[test]
    fn pwrel_bound_holds_for_arbitrary_finite_data(
        (dims, data) in arb_grid(),
        eps in prop_oneof![Just(1e-3f64), Just(0.05), Just(0.5)],
    ) {
        let cfg = SzConfig { bound: ErrorBound::PwRel(eps), ..Default::default() };
        let packed = compress(&data, &dims, &cfg).unwrap();
        let out = decompress(&packed).unwrap();
        for (a, b) in data.iter().zip(&out.data) {
            let lhs = (*a as f64 - *b as f64).abs();
            prop_assert!(lhs <= eps * (*a as f64).abs() + 1e-30, "{a} vs {b} (eps {eps})");
        }
    }

    #[test]
    fn exact_zeros_and_signs_survive_pwrel((dims, mut data) in arb_grid()) {
        // Zero out a sprinkling of entries.
        for i in (0..data.len()).step_by(3) {
            data[i] = 0.0;
        }
        let cfg = SzConfig { bound: ErrorBound::PwRel(0.1), ..Default::default() };
        let packed = compress(&data, &dims, &cfg).unwrap();
        let out = decompress(&packed).unwrap();
        for (a, b) in data.iter().zip(&out.data) {
            if *a == 0.0 {
                prop_assert_eq!(*b, 0.0);
            } else {
                prop_assert_eq!(a.signum(), b.signum());
            }
        }
    }

    #[test]
    fn decoder_never_panics_on_corruption(
        (dims, data) in arb_grid(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..), 1..6),
    ) {
        let cfg = SzConfig { bound: ErrorBound::Abs(0.01), ..Default::default() };
        let mut packed = compress(&data, &dims, &cfg).unwrap();
        for (idx, xor) in &flips {
            let p = idx.index(packed.len());
            packed[p] ^= xor;
        }
        let limits = DecodeLimits { max_elements: 1 << 20 };
        let _ = decompress_with_limits(&packed, &limits);
    }

    #[test]
    fn decoder_never_panics_on_garbage(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress_with_limits(&noise, &DecodeLimits { max_elements: 1 << 16 });
    }

    #[test]
    fn compression_is_deterministic((dims, data) in arb_grid()) {
        let cfg = SzConfig::default();
        prop_assert_eq!(
            compress(&data, &dims, &cfg).unwrap(),
            compress(&data, &dims, &cfg).unwrap()
        );
    }
}
