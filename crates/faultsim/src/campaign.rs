//! Fault-injection campaigns: many trials, run in parallel, aggregated the
//! way the paper's figures need them.

use rayon::prelude::*;

use arc_pressio::{BoundSpec, Compressor, RunningStats};

use crate::trial::{ReturnStatus, TrialContext, TrialOutcome};

/// Aggregated results of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every trial outcome, in target-bit order.
    pub trials: Vec<TrialOutcome>,
    /// The control (no-flip) trial for baseline comparison.
    pub control: TrialOutcome,
    /// Total bits in the compressed buffer.
    pub total_bits: u64,
}

impl CampaignReport {
    /// Count of trials per status class.
    pub fn status_counts(&self) -> [(ReturnStatus, usize); 4] {
        let mut counts = [0usize; 4];
        for t in &self.trials {
            if let Some(idx) = ReturnStatus::ALL.iter().position(|s| *s == t.status) {
                counts[idx] += 1;
            }
        }
        [
            (ReturnStatus::ALL[0], counts[0]),
            (ReturnStatus::ALL[1], counts[1]),
            (ReturnStatus::ALL[2], counts[2]),
            (ReturnStatus::ALL[3], counts[3]),
        ]
    }

    /// Percentage of trials in a class.
    pub fn percent(&self, status: ReturnStatus) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let c = self.trials.iter().filter(|t| t.status == status).count();
        100.0 * c as f64 / self.trials.len() as f64
    }

    /// Mean percent-incorrect over Completed trials (Fig 3's headline
    /// number — ~10% for the serial modes).
    pub fn avg_percent_incorrect(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for t in &self.trials {
            if let Some(m) = &t.metrics {
                if let Some(p) = m.percent_incorrect {
                    stats.push(p);
                }
            }
        }
        (stats.count() > 0).then(|| stats.mean())
    }

    /// Mean incorrect-*elements* over Completed trials (Fig 3d reports
    /// ZFP-Rate in elements, not percent).
    pub fn avg_incorrect_elements(&self) -> Option<f64> {
        let mut stats = RunningStats::new();
        for t in &self.trials {
            if let Some(m) = &t.metrics {
                if let Some(c) = m.incorrect_elements {
                    stats.push(c as f64);
                }
            }
        }
        (stats.count() > 0).then(|| stats.mean())
    }

    /// (mean, std-dev) of a Completed-trial metric selected by `f`.
    pub fn metric_stats(&self, f: impl Fn(&crate::trial::TrialMetrics) -> f64) -> (f64, f64) {
        let mut stats = RunningStats::new();
        for t in &self.trials {
            if let Some(m) = &t.metrics {
                stats.push(f(m));
            }
        }
        (stats.mean(), stats.std_dev())
    }

    /// Range (min, max) of percent-incorrect across Completed trials.
    pub fn percent_incorrect_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in &self.trials {
            if let Some(p) = t.metrics.as_ref().and_then(|m| m.percent_incorrect) {
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        lo.is_finite().then_some((lo, hi))
    }
}

/// Run one trial per bit in `bits`, in parallel over the available rayon
/// threads.
pub fn run_campaign(
    compressor: &dyn Compressor,
    original: &[f32],
    compressed: &[u8],
    bits: &[u64],
) -> CampaignReport {
    run_campaign_with_bound(compressor, original, compressed, bits, compressor.bound_spec())
}

/// As [`run_campaign`] with an explicit evaluation bound (Fig 3d evaluates
/// ZFP-Rate, which has no bound of its own, against the study's ε).
pub fn run_campaign_with_bound(
    compressor: &dyn Compressor,
    original: &[f32],
    compressed: &[u8],
    bits: &[u64],
    eval_bound: Option<BoundSpec>,
) -> CampaignReport {
    let _span = arc_telemetry::span("faultsim.campaign");
    arc_telemetry::counter_add("faultsim.campaigns", 1);
    let mut ctx = TrialContext::new(compressor, original, compressed);
    ctx.eval_bound = eval_bound;
    let control = ctx.run_control();
    let trials: Vec<TrialOutcome> = bits
        .par_iter()
        .map(|&b| {
            let out = ctx.run_flip(b);
            arc_telemetry::counter_add("faultsim.trials", 1);
            arc_telemetry::counter_add(status_counter_name(out.status), 1);
            out
        })
        .collect();
    CampaignReport { trials, control, total_bits: compressed.len() as u64 * 8 }
}

/// Per-status telemetry counter for one trial outcome (§4's four-way
/// return-status taxonomy).
fn status_counter_name(status: ReturnStatus) -> &'static str {
    match status {
        ReturnStatus::Completed => "faultsim.status.completed",
        ReturnStatus::CompressorException => "faultsim.status.compressor_exception",
        ReturnStatus::Terminated => "faultsim.status.terminated",
        ReturnStatus::Timeout => "faultsim.status.timeout",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::sample_bits;
    use arc_pressio::{CompressorSpec, Dataset};

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.017).sin() * 3.0 + (i as f32 * 0.003).cos()).collect()
    }

    #[test]
    fn campaign_aggregates_statuses() {
        let dims = [24usize, 24];
        let data = smooth(24 * 24);
        let comp = CompressorSpec::SzAbs(0.01).build();
        let packed = comp.compress(&Dataset { data: &data, dims: &dims }).unwrap();
        let bits = sample_bits(packed.len() as u64 * 8, 120, 11);
        let report = run_campaign(comp.as_ref(), &data, &packed, &bits);
        assert_eq!(report.trials.len(), 120);
        let total: usize = report.status_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 120);
        assert_eq!(report.control.status, ReturnStatus::Completed);
        let pct_sum: f64 = ReturnStatus::ALL.iter().map(|&s| report.percent(s)).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zfp_rate_localizes_errors_vs_sz() {
        // The paper's central §4.3 contrast: ZFP-Rate confines a flip to a
        // handful of elements, while SZ's serial stream propagates widely.
        let dims = [32usize, 32];
        let data = smooth(32 * 32);
        let eval = Some(BoundSpec::Abs(0.05));

        let zfp = CompressorSpec::ZfpRate(8.0).build();
        let zpacked = zfp.compress(&Dataset { data: &data, dims: &dims }).unwrap();
        let zbits = sample_bits(zpacked.len() as u64 * 8, 150, 3);
        let zreport = run_campaign_with_bound(zfp.as_ref(), &data, &zpacked, &zbits, eval);
        let z_avg = zreport.avg_incorrect_elements().unwrap_or(0.0);

        let sz = CompressorSpec::SzAbs(0.05).build();
        let spacked = sz.compress(&Dataset { data: &data, dims: &dims }).unwrap();
        let sbits = sample_bits(spacked.len() as u64 * 8, 150, 3);
        let sreport = run_campaign(sz.as_ref(), &data, &spacked, &sbits);
        let s_avg = sreport.avg_incorrect_elements().unwrap_or(0.0);

        assert!(
            z_avg < 40.0,
            "ZFP-Rate average incorrect elements {z_avg} should stay near one block"
        );
        assert!(s_avg > z_avg, "SZ propagation ({s_avg}) should exceed ZFP-Rate ({z_avg})");
    }

    #[test]
    fn zfp_acc_never_raises_and_mostly_completes() {
        // §4.2: 100% of ZFP trials Completed.
        let dims = [24usize, 24];
        let data = smooth(24 * 24);
        let comp = CompressorSpec::ZfpRate(8.0).build();
        let packed = comp.compress(&Dataset { data: &data, dims: &dims }).unwrap();
        // Skip the stream header (first 16 bytes): the paper injects into
        // compressed *data* held in memory; the tiny header is ARC's to
        // protect separately.
        let bits: Vec<u64> = sample_bits(packed.len() as u64 * 8 - 128, 200, 5)
            .into_iter()
            .map(|b| b + 128)
            .collect();
        let report = run_campaign_with_bound(
            comp.as_ref(),
            &data,
            &packed,
            &bits,
            Some(BoundSpec::Abs(0.05)),
        );
        assert!(
            report.percent(ReturnStatus::Completed) > 95.0,
            "ZFP-Rate completed only {:.1}%",
            report.percent(ReturnStatus::Completed)
        );
    }

    #[test]
    fn metric_stats_and_ranges() {
        let dims = [16usize, 16];
        let data = smooth(256);
        let comp = CompressorSpec::SzAbs(0.01).build();
        let packed = comp.compress(&Dataset { data: &data, dims: &dims }).unwrap();
        let bits = sample_bits(packed.len() as u64 * 8, 60, 2);
        let report = run_campaign(comp.as_ref(), &data, &packed, &bits);
        let (mean_bw, _sd) = report.metric_stats(|m| m.bandwidth_mb_s);
        assert!(mean_bw >= 0.0);
        if let Some((lo, hi)) = report.percent_incorrect_range() {
            assert!(lo <= hi);
        }
    }
}
