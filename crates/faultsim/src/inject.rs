//! Bit-flip injection and uniform sampling of target bits.
//!
//! The paper's methodology (§4.1.3): flip a single bit of the compressed
//! buffer in memory, then attempt decompression. Exhaustive injection is
//! intractable (10⁶–10¹² trials), so target bits are drawn by uniform
//! sampling — 1%, 0.1%, and 0.01% of bits for CESM, Isabel, and NYX
//! respectively, scaled by data size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flip bit `bit` (LSB-first within bytes) of `buf`.
///
/// # Panics
/// Panics if `bit` is out of range.
#[inline]
pub fn flip_bit(buf: &mut [u8], bit: u64) {
    buf[(bit / 8) as usize] ^= 1u8 << (bit % 8);
}

/// Draw `count` distinct bit positions uniformly from `0..total_bits`,
/// returned sorted. Deterministic for a seed.
///
/// # Panics
/// Panics if `count > total_bits`.
pub fn sample_bits(total_bits: u64, count: usize, seed: u64) -> Vec<u64> {
    assert!(count as u64 <= total_bits, "cannot sample {count} of {total_bits} bits");
    let mut rng = StdRng::seed_from_u64(seed);
    if (count as u64) * 3 >= total_bits {
        // Dense request: reservoir-style selection.
        let mut all: Vec<u64> = (0..total_bits).collect();
        for i in 0..count {
            let j = rng.random_range(i as u64..total_bits) as usize;
            all.swap(i, j);
        }
        let mut out = all[..count].to_vec();
        out.sort_unstable();
        return out;
    }
    let mut set = std::collections::HashSet::with_capacity(count * 2);
    while set.len() < count {
        set.insert(rng.random_range(0..total_bits));
    }
    let mut out: Vec<u64> = set.into_iter().collect();
    out.sort_unstable();
    out
}

/// Sample a fraction (e.g. 0.01 for the paper's 1%) of all bits, at least
/// one bit for non-empty buffers.
pub fn sample_fraction(total_bits: u64, fraction: f64, seed: u64) -> Vec<u64> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let count = ((total_bits as f64 * fraction).round() as usize)
        .clamp(usize::from(total_bits > 0), total_bits as usize);
    sample_bits(total_bits, count, seed)
}

/// Evenly spaced bit positions (deterministic sweep used by plots that want
/// a location axis rather than a random sample).
pub fn stride_bits(total_bits: u64, count: usize) -> Vec<u64> {
    if count == 0 || total_bits == 0 {
        return vec![];
    }
    let count = count.min(total_bits as usize);
    (0..count).map(|i| (i as u64 * total_bits) / count as u64).collect()
}

/// Corrupt a contiguous run of `len` bytes starting at `start` by XOR-ing
/// each with `0xFF` — the burst fault model (a scratched sector, a torn
/// DMA, a dropped cache line), as opposed to the paper's sparse
/// uniformly-sampled flips. Involutive: applying it twice restores the
/// buffer. Returns the number of bytes actually corrupted (the run is
/// clipped to the buffer).
pub fn burst_byte_run(buf: &mut [u8], start: usize, len: usize) -> usize {
    let end = start.saturating_add(len).min(buf.len());
    let start = start.min(buf.len());
    for b in &mut buf[start..end] {
        *b ^= 0xFF;
    }
    end - start
}

/// Inject `count` random *correctable-by-construction* bit flips into
/// distinct bytes (used by the Fig 10 decode-under-errors study, which
/// requires every injected error to be correctable).
pub fn scatter_byte_flips(buf: &mut [u8], count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = buf.len() as u64;
    assert!(count as u64 <= n, "more flips than bytes");
    let mut chosen = std::collections::HashSet::with_capacity(count * 2);
    while chosen.len() < count {
        chosen.insert(rng.random_range(0..n));
    }
    let mut bits = Vec::with_capacity(count);
    for &byte in &chosen {
        let bit = byte * 8 + rng.random_range(0..8u64);
        flip_bit(buf, bit);
        bits.push(bit);
    }
    bits.sort_unstable();
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        let mut buf = vec![0x5Au8; 16];
        let orig = buf.clone();
        flip_bit(&mut buf, 77);
        assert_ne!(buf, orig);
        flip_bit(&mut buf, 77);
        assert_eq!(buf, orig);
    }

    #[test]
    fn sample_bits_distinct_sorted_in_range() {
        let bits = sample_bits(10_000, 500, 9);
        assert_eq!(bits.len(), 500);
        assert!(bits.windows(2).all(|w| w[0] < w[1]));
        assert!(bits.iter().all(|&b| b < 10_000));
    }

    #[test]
    fn sample_bits_deterministic() {
        assert_eq!(sample_bits(5000, 100, 3), sample_bits(5000, 100, 3));
        assert_ne!(sample_bits(5000, 100, 3), sample_bits(5000, 100, 4));
    }

    #[test]
    fn dense_sampling_works() {
        let bits = sample_bits(100, 100, 1);
        assert_eq!(bits, (0..100u64).collect::<Vec<_>>());
        let bits = sample_bits(100, 90, 1);
        assert_eq!(bits.len(), 90);
    }

    #[test]
    fn fraction_sampling_matches_paper_rates() {
        // CESM at 1%: 25.92 MB → ~2.07M bits sampled of 207M.
        let total = 25_920_000u64 * 8;
        let bits = sample_fraction(total, 0.0001, 5); // scaled-down rate
        assert_eq!(bits.len(), (total as f64 * 0.0001).round() as usize);
        assert!(!sample_fraction(10, 0.0, 5).is_empty(), "at least one bit");
    }

    #[test]
    fn stride_bits_cover_range_evenly() {
        let bits = stride_bits(1000, 10);
        assert_eq!(bits, vec![0, 100, 200, 300, 400, 500, 600, 700, 800, 900]);
        assert!(stride_bits(5, 10).len() == 5);
        assert!(stride_bits(0, 10).is_empty());
    }

    #[test]
    fn burst_byte_run_is_involutive_and_clipped() {
        let mut buf = vec![0x11u8; 64];
        let orig = buf.clone();
        assert_eq!(burst_byte_run(&mut buf, 10, 20), 20);
        assert_eq!(buf[9], 0x11);
        assert_eq!(buf[10], !0x11);
        assert_eq!(buf[29], !0x11);
        assert_eq!(buf[30], 0x11);
        assert_eq!(burst_byte_run(&mut buf, 10, 20), 20);
        assert_eq!(buf, orig);
        // Clipping: run past the end, and start past the end.
        assert_eq!(burst_byte_run(&mut buf, 60, 100), 4);
        assert_eq!(burst_byte_run(&mut buf, 100, 5), 0);
    }

    #[test]
    fn scatter_byte_flips_hits_distinct_bytes() {
        let mut buf = vec![0u8; 1000];
        let bits = scatter_byte_flips(&mut buf, 200, 7);
        assert_eq!(bits.len(), 200);
        let touched = buf.iter().filter(|&&b| b != 0).count();
        assert_eq!(touched, 200, "every flip in its own byte");
    }
}
