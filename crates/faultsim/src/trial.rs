//! Single fault-injection trials and their return-status taxonomy.
//!
//! §4.2 groups every trial's outcome into four classes:
//!
//! * **Completed** — decompression "succeeds" with the error present: the
//!   dangerous class, since the corrupt data flows on (error propagation /
//!   silent data corruption);
//! * **Compressor Exception** — the codec noticed and raised an error;
//! * **Terminated** — the process crashed (captured here as a panic);
//! * **Timeout** — decompression demanded implausible work (corrupted
//!   loop-controlling metadata).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use arc_pressio::{BoundSpec, Compressor, PressioError};

use crate::inject::flip_bit;

/// The paper's four return-status classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReturnStatus {
    /// Decompression returned data despite the corruption.
    Completed,
    /// The compressor raised an exception.
    CompressorException,
    /// The decompression crashed (panicked).
    Terminated,
    /// The decode exceeded its work budget.
    Timeout,
}

impl ReturnStatus {
    /// All four classes in the paper's order.
    pub const ALL: [ReturnStatus; 4] = [
        ReturnStatus::Completed,
        ReturnStatus::CompressorException,
        ReturnStatus::Terminated,
        ReturnStatus::Timeout,
    ];

    /// Display label matching the paper's figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            ReturnStatus::Completed => "Completed",
            ReturnStatus::CompressorException => "Compressor Exception",
            ReturnStatus::Terminated => "Terminated",
            ReturnStatus::Timeout => "Timeout",
        }
    }
}

/// Integrity metrics recorded for a Completed trial (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialMetrics {
    /// Percent of elements violating the evaluation bound (None when the
    /// mode has no per-value bound, e.g. SZ-PSNR).
    pub percent_incorrect: Option<f64>,
    /// Count of violating elements.
    pub incorrect_elements: Option<usize>,
    /// Maximum absolute difference against the original data.
    pub max_abs_diff: f64,
    /// PSNR against the original data (dB).
    pub psnr: f64,
    /// Wall-clock decompression time in seconds.
    pub decompress_seconds: f64,
    /// Decompression bandwidth over the compressed size, MB/s.
    pub bandwidth_mb_s: f64,
}

/// One trial's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The flipped bit's index (bit 0 = LSB of byte 0), or `None` for
    /// control trials.
    pub bit: Option<u64>,
    /// Status class.
    pub status: ReturnStatus,
    /// Metrics for Completed trials.
    pub metrics: Option<TrialMetrics>,
}

/// Parameters for a single trial run.
pub struct TrialContext<'a> {
    /// The compressor that produced (and will decode) the stream.
    pub compressor: &'a dyn Compressor,
    /// Original uncompressed values for integrity metrics.
    pub original: &'a [f32],
    /// The pristine compressed buffer.
    pub compressed: &'a [u8],
    /// Bound used to count incorrect elements (usually the compressor's
    /// own; overridable for modes without one, like ZFP-Rate in Fig 3d).
    pub eval_bound: Option<BoundSpec>,
    /// Decode work budget in elements; the paper uses "3× the average
    /// decompression time" — here 4× the true element count.
    pub work_budget: u64,
}

impl<'a> TrialContext<'a> {
    /// Build a context with the default work budget and the compressor's
    /// own bound.
    pub fn new(
        compressor: &'a dyn Compressor,
        original: &'a [f32],
        compressed: &'a [u8],
    ) -> TrialContext<'a> {
        TrialContext {
            compressor,
            original,
            compressed,
            eval_bound: compressor.bound_spec(),
            work_budget: (original.len() as u64).saturating_mul(4).max(1024),
        }
    }

    /// Run a control trial (no flip) — the baseline row in Fig 5.
    pub fn run_control(&self) -> TrialOutcome {
        self.run_with(None)
    }

    /// Flip `bit` and run.
    pub fn run_flip(&self, bit: u64) -> TrialOutcome {
        self.run_with(Some(bit))
    }

    fn run_with(&self, bit: Option<u64>) -> TrialOutcome {
        let mut buf = self.compressed.to_vec();
        if let Some(b) = bit {
            flip_bit(&mut buf, b);
        }
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.compressor.decompress_with_limit(&buf, self.work_budget)
        }));
        let seconds = t0.elapsed().as_secs_f64();
        let status_and_data = match result {
            Err(_) => (ReturnStatus::Terminated, None),
            Ok(Err(PressioError::Timeout { .. })) => (ReturnStatus::Timeout, None),
            Ok(Err(PressioError::Codec(_))) => (ReturnStatus::CompressorException, None),
            Ok(Ok(decoded)) => {
                if decoded.data.len() != self.original.len() {
                    // The stream now describes a different dataset; any
                    // consumer holding the real dims would reject it.
                    (ReturnStatus::CompressorException, None)
                } else {
                    (ReturnStatus::Completed, Some(decoded))
                }
            }
        };
        let (status, decoded) = status_and_data;
        let metrics = decoded.map(|d| {
            let incorrect =
                self.eval_bound.map(|b| arc_pressio::incorrect_elements(self.original, &d.data, b));
            TrialMetrics {
                percent_incorrect: incorrect
                    .map(|c| 100.0 * c as f64 / self.original.len().max(1) as f64),
                incorrect_elements: incorrect,
                max_abs_diff: arc_pressio::max_abs_diff(self.original, &d.data),
                psnr: arc_pressio::psnr(self.original, &d.data),
                decompress_seconds: seconds,
                bandwidth_mb_s: if seconds > 0.0 {
                    self.compressed.len() as f64 / 1e6 / seconds
                } else {
                    f64::INFINITY
                },
            }
        });
        TrialOutcome { bit, status, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_pressio::{CompressorSpec, Dataset};

    fn setup() -> (Vec<f32>, Vec<usize>, Vec<u8>, Box<dyn Compressor>) {
        let dims = vec![32usize, 32];
        let data: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.02).sin() * 5.0).collect();
        let comp = CompressorSpec::SzAbs(0.01).build();
        let packed = comp.compress(&Dataset { data: &data, dims: &dims }).unwrap();
        (data, dims, packed, comp)
    }

    #[test]
    fn control_trial_is_clean_completed() {
        let (data, _dims, packed, comp) = setup();
        let ctx = TrialContext::new(comp.as_ref(), &data, &packed);
        let out = ctx.run_control();
        assert_eq!(out.status, ReturnStatus::Completed);
        let m = out.metrics.unwrap();
        assert_eq!(m.percent_incorrect, Some(0.0));
        assert!(m.max_abs_diff <= 0.01);
        assert!(m.psnr > 40.0);
        assert!(m.bandwidth_mb_s > 0.0);
    }

    #[test]
    fn flip_trials_classify_without_panicking_through() {
        let (data, _dims, packed, comp) = setup();
        let ctx = TrialContext::new(comp.as_ref(), &data, &packed);
        let mut counts = std::collections::HashMap::new();
        for bit in (0..packed.len() as u64 * 8).step_by(193) {
            let out = ctx.run_flip(bit);
            *counts.entry(out.status).or_insert(0usize) += 1;
            if out.status == ReturnStatus::Completed {
                assert!(out.metrics.is_some());
            } else {
                assert!(out.metrics.is_none());
            }
        }
        // Some trials must decode "successfully" despite corruption —
        // that's the paper's whole point.
        assert!(counts.get(&ReturnStatus::Completed).copied().unwrap_or(0) > 0, "{counts:?}");
    }

    #[test]
    fn corrupted_completed_trials_show_damage() {
        let (data, _dims, packed, comp) = setup();
        let ctx = TrialContext::new(comp.as_ref(), &data, &packed);
        let mut any_damage = false;
        for bit in (64..packed.len() as u64 * 8).step_by(57) {
            let out = ctx.run_flip(bit);
            if out.status == ReturnStatus::Completed {
                let m = out.metrics.unwrap();
                if m.percent_incorrect.unwrap_or(0.0) > 0.0 {
                    any_damage = true;
                    break;
                }
            }
        }
        assert!(any_damage, "no flip propagated to decoded values");
    }

    #[test]
    fn status_labels_match_paper() {
        assert_eq!(ReturnStatus::Completed.label(), "Completed");
        assert_eq!(ReturnStatus::CompressorException.label(), "Compressor Exception");
        assert_eq!(ReturnStatus::ALL.len(), 4);
    }
}
