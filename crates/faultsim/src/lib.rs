//! # arc-faultsim — soft-error fault-injection harness
//!
//! The reproduction of the paper's fault-injection methodology (§4):
//! uniform sampling of target bits in a compressed buffer, single-bit flip
//! injection, trial execution with the four-way return-status taxonomy
//! (*Completed / Compressor Exception / Terminated / Timeout*), and
//! campaign-level aggregation of the §4.1.3 integrity metrics.
//!
//! ```
//! use arc_faultsim::{run_campaign, sample_bits};
//! use arc_pressio::{CompressorSpec, Dataset};
//!
//! let data: Vec<f32> = (0..32 * 32).map(|i| (i as f32 * 0.03).sin()).collect();
//! let comp = CompressorSpec::SzAbs(0.01).build();
//! let packed = comp.compress(&Dataset { data: &data, dims: &[32, 32] }).unwrap();
//! let bits = sample_bits(packed.len() as u64 * 8, 50, 42);
//! let report = run_campaign(comp.as_ref(), &data, &packed, &bits);
//! assert_eq!(report.trials.len(), 50);
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod hostile;
pub mod inject;
pub mod storm;
pub mod trial;

pub use campaign::{run_campaign, run_campaign_with_bound, CampaignReport};
pub use hostile::{
    builtin_targets, mutations, run_case, sweep, sweep_builtin, CaseFailure, CaseStatus,
    DecodeTarget, GoldenStream, HostileConfig, HostileReport,
};
pub use inject::{
    burst_byte_run, flip_bit, sample_bits, sample_fraction, scatter_byte_flips, stride_bits,
};
pub use storm::{apply_events, draw_events, storm, FaultEvent, FaultMix, StormSummary};
pub use trial::{ReturnStatus, TrialContext, TrialMetrics, TrialOutcome};
