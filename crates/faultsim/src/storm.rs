//! Fault-mix injection: whole-campaign fault *storms* drawn from a
//! machine's fault distribution.
//!
//! §6.4 characterizes machines not just by rate but by *mix*: Cielo's
//! faults are 70.79% single-bit with most of the remainder arriving as
//! bursts within one DRAM device, Hopper's are 94.6% single-bit. This
//! module draws fault events from such a mix and applies them to a stored
//! buffer, so harnesses can ask the end-to-end question the paper's
//! §6.3/§6.4 discussion implies: *does the ARC configuration recommended
//! for this machine actually survive this machine's weather?*

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::inject::flip_bit;

/// A machine's fault mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Fraction of fault events that flip exactly one bit.
    pub single_bit_fraction: f64,
    /// Burst length range in **bytes** for multi-bit events (inclusive);
    /// every bit in the burst is flipped — the "densely packed" case.
    pub burst_bytes: (usize, usize),
}

impl FaultMix {
    /// Cielo-like mix (§6.4): 70.79% single-bit, bursts within one DRAM
    /// device for the rest.
    pub fn cielo_like() -> FaultMix {
        FaultMix { single_bit_fraction: 0.7079, burst_bytes: (2, 512) }
    }

    /// Hopper-like mix (§6.4): 94.6% single-bit, occasional short bursts.
    pub fn hopper_like() -> FaultMix {
        FaultMix { single_bit_fraction: 0.946, burst_bytes: (2, 64) }
    }

    /// Validate the mix.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.single_bit_fraction) {
            return Err(format!("single_bit_fraction {} out of range", self.single_bit_fraction));
        }
        if self.burst_bytes.0 == 0 || self.burst_bytes.0 > self.burst_bytes.1 {
            return Err(format!("invalid burst range {:?}", self.burst_bytes));
        }
        Ok(())
    }
}

/// One concrete fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Flip one bit.
    SingleBit {
        /// Bit index.
        bit: u64,
    },
    /// Invert every bit in `len` consecutive bytes starting at `start`.
    Burst {
        /// First affected byte.
        start: usize,
        /// Burst length in bytes.
        len: usize,
    },
}

/// Draw `events` fault events for a buffer of `buf_len` bytes.
pub fn draw_events(buf_len: usize, events: usize, mix: &FaultMix, seed: u64) -> Vec<FaultEvent> {
    assert!(mix.validate().is_ok(), "invalid fault mix");
    assert!(buf_len > 0, "empty buffer");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..events)
        .map(|_| {
            if rng.random::<f64>() < mix.single_bit_fraction {
                FaultEvent::SingleBit { bit: rng.random_range(0..buf_len as u64 * 8) }
            } else {
                let max_len = mix.burst_bytes.1.min(buf_len);
                let len = rng.random_range(mix.burst_bytes.0.min(max_len)..=max_len);
                let start = rng.random_range(0..=(buf_len - len) as u64) as usize;
                FaultEvent::Burst { start, len }
            }
        })
        .collect()
}

/// Apply events to a buffer.
pub fn apply_events(buf: &mut [u8], events: &[FaultEvent]) {
    for e in events {
        match *e {
            FaultEvent::SingleBit { bit } => flip_bit(buf, bit),
            FaultEvent::Burst { start, len } => {
                for b in &mut buf[start..start + len] {
                    *b = !*b;
                }
            }
        }
    }
}

/// Summary of a storm: how many events of each kind, how many bits flipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StormSummary {
    /// Single-bit events applied.
    pub single_bit_events: usize,
    /// Burst events applied.
    pub burst_events: usize,
    /// Total bits flipped.
    pub bits_flipped: u64,
}

/// Draw and apply a storm in one call, returning its summary.
pub fn storm(buf: &mut [u8], events: usize, mix: &FaultMix, seed: u64) -> StormSummary {
    let drawn = draw_events(buf.len(), events, mix, seed);
    let mut summary = StormSummary::default();
    for e in &drawn {
        match *e {
            FaultEvent::SingleBit { .. } => {
                summary.single_bit_events += 1;
                summary.bits_flipped += 1;
            }
            FaultEvent::Burst { len, .. } => {
                summary.burst_events += 1;
                summary.bits_flipped += len as u64 * 8;
            }
        }
    }
    apply_events(buf, &drawn);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_validation() {
        assert!(FaultMix::cielo_like().validate().is_ok());
        assert!(FaultMix::hopper_like().validate().is_ok());
        assert!(FaultMix { single_bit_fraction: 1.5, burst_bytes: (1, 2) }.validate().is_err());
        assert!(FaultMix { single_bit_fraction: 0.5, burst_bytes: (0, 2) }.validate().is_err());
        assert!(FaultMix { single_bit_fraction: 0.5, burst_bytes: (5, 2) }.validate().is_err());
    }

    #[test]
    fn event_mix_matches_fractions() {
        let mix = FaultMix::hopper_like();
        let events = draw_events(1 << 20, 5_000, &mix, 7);
        let singles = events.iter().filter(|e| matches!(e, FaultEvent::SingleBit { .. })).count();
        let frac = singles as f64 / events.len() as f64;
        assert!((frac - 0.946).abs() < 0.02, "observed single-bit fraction {frac}");
    }

    #[test]
    fn events_stay_in_bounds() {
        let mix = FaultMix::cielo_like();
        let n = 4096usize;
        for e in draw_events(n, 2_000, &mix, 3) {
            match e {
                FaultEvent::SingleBit { bit } => assert!(bit < n as u64 * 8),
                FaultEvent::Burst { start, len } => {
                    assert!(len >= 2 && start + len <= n);
                }
            }
        }
    }

    #[test]
    fn apply_is_involutive() {
        let mut buf = vec![0xA5u8; 2048];
        let orig = buf.clone();
        let events = draw_events(buf.len(), 50, &FaultMix::cielo_like(), 11);
        apply_events(&mut buf, &events);
        assert_ne!(buf, orig);
        apply_events(&mut buf, &events);
        assert_eq!(buf, orig, "XOR faults are involutive");
    }

    #[test]
    fn storm_summary_accounts_for_everything() {
        let mut buf = vec![0u8; 1 << 16];
        let s = storm(&mut buf, 200, &FaultMix::cielo_like(), 5);
        assert_eq!(s.single_bit_events + s.burst_events, 200);
        assert!(s.bits_flipped >= 200);
        let set_bits: u64 = buf.iter().map(|b| b.count_ones() as u64).sum();
        assert!(set_bits > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = draw_events(1000, 100, &FaultMix::cielo_like(), 42);
        let b = draw_events(1000, 100, &FaultMix::cielo_like(), 42);
        assert_eq!(a, b);
        let c = draw_events(1000, 100, &FaultMix::cielo_like(), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn small_buffers_clamp_burst_length() {
        let events = draw_events(4, 100, &FaultMix::cielo_like(), 1);
        for e in events {
            if let FaultEvent::Burst { start, len } = e {
                assert!(start + len <= 4);
            }
        }
    }
}
