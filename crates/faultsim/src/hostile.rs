//! Deterministic structure-aware hostile-input harness.
//!
//! Where [`crate::trial`] reproduces the paper's *random single-bit* fault
//! model (§4.2), this module attacks the decoders the way a hostile or
//! badly-corrupted storage layer would: seeded multi-bit flips, truncation
//! at every header boundary, length-field inflation, and valid-header /
//! garbage-body splices. The contract under test is **totality**, not
//! correctness: every decode must either return data or return an error —
//! never panic (the paper's *Terminated* class), never demand unbounded
//! output (*Timeout* via corrupted loop-controlling metadata), and never
//! hang past a wall-clock guard.
//!
//! A decode that "succeeds" and hands back garbage is acceptable here —
//! that is the paper's *Completed* class, and detecting it is ARC's job
//! (ECC + end-to-end CRC), not the codec's.
//!
//! Every case is reproducible: mutation positions derive from
//! [`HostileConfig::seed`] XOR an FNV-1a hash of the stream name, so a
//! failure report's `(target, stream, case)` triple pins down the exact
//! corrupt buffer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::inject::{flip_bit, sample_bits};

/// Tuning knobs for a hostile sweep.
#[derive(Debug, Clone)]
pub struct HostileConfig {
    /// Master seed; every mutation position derives from it.
    pub seed: u64,
    /// Random multi-bit-flip cases per stream.
    pub flips: usize,
    /// Body truncation cases per stream (header boundaries are always all
    /// exercised on top of these).
    pub truncations: usize,
    /// Length-field-inflation cases per stream (0xFF runs stamped into the
    /// header region).
    pub inflations: usize,
    /// Valid-header / garbage-body splice cases per stream.
    pub splices: usize,
    /// Wall-clock guard per case; a decode still running after this is the
    /// paper's *Timeout* class and a harness failure.
    pub max_case_duration: Duration,
    /// Output-byte budget handed to each decoder; producing (or demanding)
    /// more is an over-budget failure.
    pub max_output_bytes: u64,
}

impl Default for HostileConfig {
    fn default() -> HostileConfig {
        HostileConfig {
            seed: 0xA5C0_FFEE,
            flips: 64,
            truncations: 32,
            inflations: 16,
            splices: 6,
            max_case_duration: Duration::from_secs(2),
            max_output_bytes: 32 << 20,
        }
    }
}

impl HostileConfig {
    /// A reduced configuration sized for CI unit tests (fewer cases, the
    /// same four mutation families).
    pub fn quick() -> HostileConfig {
        HostileConfig {
            flips: 12,
            truncations: 6,
            inflations: 4,
            splices: 2,
            ..HostileConfig::default()
        }
    }
}

/// A pristine encoded stream plus a hint where its header region ends,
/// used to focus truncation and inflation attacks on structure-bearing
/// bytes.
#[derive(Debug, Clone)]
pub struct GoldenStream {
    /// Label used in failure reports and per-stream seeding.
    pub name: String,
    /// The pristine encoded bytes.
    pub bytes: Vec<u8>,
    /// Byte length of the header/metadata region (clamped to the stream
    /// length when attacks are generated).
    pub header_len: usize,
    /// Byte length of trailing structure (e.g. the triplicated shard index
    /// of a v2 sharded container); 0 for streams whose metadata all lives
    /// up front. When non-zero, three extra mutation families attack the
    /// trailer: truncation at every boundary through it, inflation runs
    /// inside it, and payload/trailer splices.
    pub trailer_len: usize,
}

/// A decode entry point under test. Takes the (possibly corrupt) bytes and
/// an output-byte budget; returns the number of output bytes produced, or
/// a rejection reason.
pub type DecodeFn = Arc<dyn Fn(&[u8], u64) -> Result<u64, String> + Send + Sync>;

/// One decoder plus the golden streams it will be attacked through.
#[derive(Clone)]
pub struct DecodeTarget {
    /// Decoder label (e.g. `"sz"`, `"container"`).
    pub name: String,
    /// Pristine streams this decoder accepts.
    pub streams: Vec<GoldenStream>,
    /// The fallible decode entry point.
    pub decode: DecodeFn,
}

impl std::fmt::Debug for DecodeTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeTarget")
            .field("name", &self.name)
            .field("streams", &self.streams.len())
            .finish()
    }
}

/// Outcome of one hostile case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseStatus {
    /// The decoder returned a typed error — the ideal outcome.
    Rejected,
    /// The decoder returned data (possibly garbage) within budget — the
    /// paper's *Completed* class; acceptable for permissive decoders.
    Completed {
        /// Output bytes produced.
        output_bytes: u64,
    },
    /// The decoder panicked — a totality violation (the paper's
    /// *Terminated* class).
    Panicked(String),
    /// The decoder exceeded the wall-clock guard (*Timeout* class). The
    /// worker thread is leaked; the sweep carries on.
    TimedOut,
    /// The decoder produced more output than its byte budget allows.
    OverBudget {
        /// Output bytes produced.
        output_bytes: u64,
    },
}

impl CaseStatus {
    /// Whether this status violates the totality contract.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            CaseStatus::Panicked(_) | CaseStatus::TimedOut | CaseStatus::OverBudget { .. }
        )
    }
}

/// A contract-violating case, with enough context to reproduce it.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Decoder label.
    pub target: String,
    /// Golden stream label.
    pub stream: String,
    /// Mutation case label (family + deterministic position info).
    pub case: String,
    /// The violating status.
    pub status: CaseStatus,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}: {:?}", self.target, self.stream, self.case, self.status)
    }
}

/// Aggregate result of a hostile sweep.
#[derive(Debug, Clone, Default)]
pub struct HostileReport {
    /// Total cases executed.
    pub cases: usize,
    /// Cases the decoder rejected with a typed error.
    pub rejected: usize,
    /// Cases that decoded to (possibly garbage) data within budget.
    pub completed: usize,
    /// Panicking cases (failures).
    pub panicked: usize,
    /// Wall-clock-guard violations (failures).
    pub timed_out: usize,
    /// Output-budget violations (failures).
    pub over_budget: usize,
    /// Every contract-violating case.
    pub failures: Vec<CaseFailure>,
    /// Slowest observed case.
    pub worst_case: Duration,
}

impl HostileReport {
    /// True when no case panicked, hung, or blew the output budget.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} cases: {} rejected, {} completed, {} panicked, {} timed out, \
             {} over budget (worst case {:?})",
            self.cases,
            self.rejected,
            self.completed,
            self.panicked,
            self.timed_out,
            self.over_budget,
            self.worst_case
        )
    }

    fn record(&mut self, target: &str, stream: &str, case: &str, status: CaseStatus) {
        self.cases += 1;
        match &status {
            CaseStatus::Rejected => self.rejected += 1,
            CaseStatus::Completed { .. } => self.completed += 1,
            CaseStatus::Panicked(_) => self.panicked += 1,
            CaseStatus::TimedOut => self.timed_out += 1,
            CaseStatus::OverBudget { .. } => self.over_budget += 1,
        }
        if status.is_failure() {
            self.failures.push(CaseFailure {
                target: target.to_string(),
                stream: stream.to_string(),
                case: case.to_string(),
                status,
            });
        }
    }
}

/// FNV-1a over a byte string — a tiny, dependency-free stable hash used to
/// derive a per-stream seed from the master seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generate every labeled hostile mutation of `stream` under `cfg`.
///
/// Four families, all deterministic in `cfg.seed` and the stream name:
///
/// 1. **Bit flips** — `cfg.flips` buffers each with 1–8 seeded flips.
/// 2. **Truncations** — one case per byte boundary through the header
///    region (catching every partial-header length) plus `cfg.truncations`
///    sampled body cut points.
/// 3. **Inflations** — 0xFF runs stamped over header bytes, the classic
///    way to blow up length/count fields.
/// 4. **Splices** — the pristine header followed by garbage bodies
///    (zeros, 0xFF, seeded noise) at assorted lengths.
///
/// Streams with a non-zero `trailer_len` (v2 sharded containers) get three
/// more families aimed at the trailing shard index:
///
/// 5. **Trailer truncation** — one case per byte boundary through the
///    trailer, so every partial-index length is exercised.
/// 6. **Trailer inflation** — 0xFF runs stamped inside the trailer.
/// 7. **Trailer splices** — pristine payload with a garbage trailer, and
///    pristine trailer with a garbage payload (the index then points into
///    noise).
pub fn mutations(stream: &GoldenStream, cfg: &HostileConfig) -> Vec<(String, Vec<u8>)> {
    let bytes = &stream.bytes;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv1a(stream.name.as_bytes()));
    let mut cases: Vec<(String, Vec<u8>)> = Vec::new();
    if bytes.is_empty() {
        return cases;
    }
    let total_bits = bytes.len() as u64 * 8;
    let header_end = stream.header_len.min(bytes.len());

    // Family 1: multi-bit flips.
    for i in 0..cfg.flips {
        let nflips = 1 + (i % 8);
        let case_seed: u64 = rng.random();
        let mut buf = bytes.clone();
        for bit in sample_bits(total_bits, nflips.min(total_bits as usize), case_seed) {
            flip_bit(&mut buf, bit);
        }
        cases.push((format!("flip{i}x{nflips}"), buf));
    }

    // Family 2: truncation at every header boundary, then sampled body cuts.
    for cut in 0..=header_end {
        cases.push((format!("trunc-hdr{cut}"), bytes[..cut].to_vec()));
    }
    for i in 0..cfg.truncations {
        let cut = rng.random_range(0..bytes.len());
        cases.push((format!("trunc-body{i}@{cut}"), bytes[..cut].to_vec()));
    }

    // Family 3: length-field inflation — 0xFF runs in the header region.
    for i in 0..cfg.inflations {
        let run = [2usize, 5, 8][i % 3];
        let at = rng.random_range(0..header_end.max(1));
        let mut buf = bytes.clone();
        for b in buf.iter_mut().skip(at).take(run) {
            *b = 0xFF;
        }
        cases.push((format!("inflate{i}@{at}x{run}"), buf));
    }

    // Family 4: pristine header, hostile body.
    let body_lens = [bytes.len().saturating_sub(header_end), 16, 1024];
    for i in 0..cfg.splices {
        let body_len = body_lens[i % body_lens.len()];
        let mut buf = bytes[..header_end].to_vec();
        match i % 3 {
            0 => buf.extend(std::iter::repeat_n(0u8, body_len)),
            1 => buf.extend(std::iter::repeat_n(0xFFu8, body_len)),
            _ => buf.extend((0..body_len).map(|_| rng.random::<u8>())),
        }
        cases.push((format!("splice{i}x{body_len}"), buf));
    }

    // Families 5–7: trailer attacks, only for streams with trailing
    // structure (the triplicated shard index of a v2 container).
    let trailer_len = stream.trailer_len.min(bytes.len().saturating_sub(header_end));
    if trailer_len > 0 {
        let trailer_start = bytes.len() - trailer_len;

        // Family 5: truncation at every boundary through the trailer.
        for cut in trailer_start..bytes.len() {
            cases.push((format!("trunc-tail{cut}"), bytes[..cut].to_vec()));
        }

        // Family 6: 0xFF runs inside the trailer.
        for i in 0..cfg.inflations {
            let run = [3usize, 8, 21][i % 3];
            let at = trailer_start + rng.random_range(0..trailer_len);
            let mut buf = bytes.clone();
            for b in buf.iter_mut().skip(at).take(run) {
                *b = 0xFF;
            }
            cases.push((format!("inflate-tail{i}@{at}x{run}"), buf));
        }

        // Family 7: payload/trailer splices. Even cases keep the payload
        // and replace the trailer; odd cases keep the trailer and replace
        // the payload (a valid-looking index over noise).
        for i in 0..cfg.splices.max(2) {
            let mut buf = bytes.clone();
            let (lo, hi) =
                if i % 2 == 0 { (trailer_start, bytes.len()) } else { (header_end, trailer_start) };
            match i % 3 {
                0 => buf[lo..hi].fill(0),
                1 => buf[lo..hi].fill(0xFF),
                _ => {
                    for b in &mut buf[lo..hi] {
                        *b = rng.random();
                    }
                }
            }
            let region = if i % 2 == 0 { "tail" } else { "body" };
            cases.push((format!("splice-{region}{i}"), buf));
        }
    }

    cases
}

/// Render a panic payload as text without re-panicking.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one decode attempt under the totality contract.
///
/// The decode runs on a fresh thread so a hang can be abandoned: on
/// timeout the worker is leaked (it holds only its own copy of the buffer)
/// and the case is reported as [`CaseStatus::TimedOut`].
pub fn run_case(decode: &DecodeFn, bytes: &[u8], cfg: &HostileConfig) -> (CaseStatus, Duration) {
    let (tx, rx) = mpsc::channel();
    let decode = Arc::clone(decode);
    let buf = bytes.to_vec();
    let budget = cfg.max_output_bytes;
    let start = Instant::now();
    thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| decode(&buf, budget)));
        let _ = tx.send(result);
    });
    let status = match rx.recv_timeout(cfg.max_case_duration) {
        Err(_) => CaseStatus::TimedOut,
        Ok(Err(payload)) => CaseStatus::Panicked(panic_message(payload)),
        Ok(Ok(Err(_reason))) => CaseStatus::Rejected,
        Ok(Ok(Ok(produced))) => {
            if produced > cfg.max_output_bytes {
                CaseStatus::OverBudget { output_bytes: produced }
            } else {
                CaseStatus::Completed { output_bytes: produced }
            }
        }
    };
    (status, start.elapsed())
}

/// Sweep every mutation of every stream of every target.
pub fn sweep(targets: &[DecodeTarget], cfg: &HostileConfig) -> HostileReport {
    let mut report = HostileReport::default();
    for target in targets {
        for stream in &target.streams {
            for (case, buf) in mutations(stream, cfg) {
                let (status, elapsed) = run_case(&target.decode, &buf, cfg);
                report.worst_case = report.worst_case.max(elapsed);
                report.record(&target.name, &stream.name, &case, status);
            }
        }
    }
    report
}

/// Sweep the built-in corpus (every workspace decoder) under `cfg`.
pub fn sweep_builtin(cfg: &HostileConfig) -> HostileReport {
    sweep(&builtin_targets(), cfg)
}

/// The smooth 2-D field used to build golden streams (48×48, the same
/// shape class as the paper's SDRBench fields, scaled down for speed).
fn golden_field() -> (Vec<f32>, Vec<usize>) {
    let dims = vec![48usize, 48];
    let data: Vec<f32> = (0..48 * 48)
        .map(|i| {
            let (r, c) = (i / 48, i % 48);
            ((r as f32) * 0.13).sin() * 4.0 + ((c as f32) * 0.07).cos() * 2.5 + 0.5
        })
        .collect();
    (data, dims)
}

/// Build one [`DecodeTarget`] per decode entry point in the workspace:
/// SZ, ZFP, the gzip-like and zstd-like lossless codecs, and the ARC ECC
/// container (one golden stream per built-in scheme family).
///
/// Stream construction is infallible in practice; if an encoder ever
/// refuses its golden input the stream is simply omitted (the sweep tests
/// assert the corpus is non-empty).
pub fn builtin_targets() -> Vec<DecodeTarget> {
    let (data, dims) = golden_field();
    let mut targets: Vec<DecodeTarget> = Vec::new();

    // SZ: error-bounded prediction + quantization, ~48-byte header.
    let mut sz_streams = Vec::new();
    for (label, bound) in
        [("sz-abs", arc_sz::ErrorBound::Abs(1e-3)), ("sz-pwrel", arc_sz::ErrorBound::PwRel(1e-2))]
    {
        let cfg = arc_sz::SzConfig { bound, ..arc_sz::SzConfig::default() };
        if let Ok(bytes) = arc_sz::compress(&data, &dims, &cfg) {
            sz_streams.push(GoldenStream {
                name: label.to_string(),
                bytes,
                header_len: 48,
                trailer_len: 0,
            });
        }
    }
    targets.push(DecodeTarget {
        name: "sz".to_string(),
        streams: sz_streams,
        decode: Arc::new(|b, budget| {
            let limits = arc_sz::DecodeLimits { max_elements: (budget / 4).max(1) };
            arc_sz::decompress_with_limits(b, &limits)
                .map(|d| d.data.len() as u64 * 4)
                .map_err(|e| e.to_string())
        }),
    });

    // ZFP: transform coding, ~32-byte header.
    let mut zfp_streams = Vec::new();
    for (label, mode) in [
        ("zfp-acc", arc_zfp::ZfpMode::FixedAccuracy(1e-3)),
        ("zfp-rate", arc_zfp::ZfpMode::FixedRate(8.0)),
    ] {
        if let Ok(bytes) = arc_zfp::compress(&data, &dims, mode) {
            zfp_streams.push(GoldenStream {
                name: label.to_string(),
                bytes,
                header_len: 32,
                trailer_len: 0,
            });
        }
    }
    targets.push(DecodeTarget {
        name: "zfp".to_string(),
        streams: zfp_streams,
        decode: Arc::new(|b, budget| {
            let limits = arc_zfp::DecodeLimits { max_elements: (budget / 4).max(1) };
            arc_zfp::decompress_with_limits(b, &limits)
                .map(|d| d.data.len() as u64 * 4)
                .map_err(|e| e.to_string())
        }),
    });

    // Lossless codecs over a compressible byte corpus.
    let text: Vec<u8> =
        b"the quick brown fox jumps over the lazy dog 0123456789 ".repeat(96).to_vec();
    targets.push(DecodeTarget {
        name: "gzip-like".to_string(),
        streams: vec![GoldenStream {
            name: "deflate-text".to_string(),
            bytes: arc_lossless::deflate::compress(&text),
            header_len: 64,
            trailer_len: 0,
        }],
        decode: Arc::new(|b, budget| {
            arc_lossless::deflate::decompress_with_limit(b, budget)
                .map(|v| v.len() as u64)
                .map_err(|e| e.to_string())
        }),
    });
    targets.push(DecodeTarget {
        name: "zstd-like".to_string(),
        streams: vec![GoldenStream {
            name: "zstd-text".to_string(),
            bytes: arc_lossless::zstd_like::compress(&text),
            header_len: 64,
            trailer_len: 0,
        }],
        decode: Arc::new(|b, budget| {
            arc_lossless::zstd_like::decompress_with_limit(b, budget)
                .map(|v| v.len() as u64)
                .map_err(|e| e.to_string())
        }),
    });

    // ARC ECC containers, one stream per built-in scheme family. The
    // container header is fully RS-protected, so its length is the most
    // interesting truncation range.
    let payload: Vec<u8> = (0..24_000u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
    let mut container_streams = Vec::new();
    let configs = [
        ("ecc-parity", arc_ecc::EccConfig::parity(8).ok()),
        ("ecc-secded", Some(arc_ecc::EccConfig::secded(true))),
        ("ecc-rs", arc_ecc::EccConfig::rs(16, 4).ok()),
    ];
    for (label, config) in configs {
        let Some(config) = config else { continue };
        if let Ok(bytes) = arc_core::arc_engine_encode(&payload, config, 1) {
            // The header occupies everything before the payload; probe its
            // true length from the pristine container so every boundary in
            // `0..=header_len` is exercised.
            let header_len = arc_core::container::unpack(&bytes)
                .map(|u| bytes.len() - u.payload.len())
                .unwrap_or(128);
            container_streams.push(GoldenStream {
                name: label.to_string(),
                bytes,
                header_len,
                trailer_len: 0,
            });
        }
    }
    // v2 sharded containers: same payload, small shards so the triplicated
    // trailing index is a meaningful fraction of the stream. `trailer_len`
    // marks it, enabling the trailer mutation families.
    let mut sharded_streams = Vec::new();
    let v2_configs = [
        ("ecc-secded-v2", Some(arc_ecc::EccConfig::secded(true))),
        ("ecc-rs-v2", arc_ecc::EccConfig::rs(16, 4).ok()),
    ];
    for (label, config) in v2_configs {
        let Some(config) = config else { continue };
        if let Ok(bytes) = arc_core::arc_engine_encode_sharded(&payload, config, 1, 2048) {
            let (header_len, trailer_len) = arc_core::container::unpack(&bytes)
                .map(|u| (u.payload_offset, u.meta.sharding.map_or(0, |s| 3 * s.index_len)))
                .unwrap_or((128, 0));
            sharded_streams.push(GoldenStream {
                name: label.to_string(),
                bytes,
                header_len,
                trailer_len,
            });
        }
    }
    container_streams.extend(sharded_streams.iter().cloned());
    targets.push(DecodeTarget {
        name: "container".to_string(),
        streams: container_streams,
        decode: Arc::new(|b, _budget| {
            arc_core::decode_with_threads(b, 1)
                .map(|(data, _report)| data.len() as u64)
                .map_err(|e| e.to_string())
        }),
    });

    // The random-access reader over the same v2 streams: open + a spread
    // of range reads (start, middle straddling a shard boundary, end).
    // Repeats hit the shard cache, so cache paths see hostile bytes too.
    targets.push(DecodeTarget {
        name: "container-range".to_string(),
        streams: sharded_streams.clone(),
        decode: Arc::new(|b, _budget| {
            let mut reader = arc_core::ArcReader::open(b, 1).map_err(|e| e.to_string())?;
            let n = reader.data_len();
            let mut produced = 0u64;
            let probes = [
                (0usize, n.min(512)),
                (n / 2, (n / 3).min(n - n / 2)),
                (n.saturating_sub(100), n.min(100)),
                (0, n.min(512)),
            ];
            for (off, len) in probes {
                let (out, _) = reader.decode_range(off, len).map_err(|e| e.to_string())?;
                produced += out.len() as u64;
            }
            Ok(produced)
        }),
    });

    // The push-based streaming decoder over the same v2 streams, fed in
    // adversarial push sizes: a 1-byte drip across the length prefix and
    // both header codewords (so every header-straddling cut is exercised),
    // then odd-sized chunks for the shard bodies and index trailer, and a
    // second whole-buffer pass. The decoder emits plaintext before the
    // trailing index arrives, so its late cross-checks (index-vs-streamed
    // geometry, whole-data CRC) are exactly what hostile bytes attack.
    targets.push(DecodeTarget {
        name: "stream-v2".to_string(),
        streams: sharded_streams,
        decode: Arc::new(|b, _budget| {
            let drip = |sizes: &[usize]| -> Result<u64, String> {
                let mut dec = arc_core::StreamDecoder::new();
                let mut out = Vec::new();
                let head = b.len().min(600);
                for i in 0..head {
                    dec.push(&b[i..i + 1], &mut out).map_err(|e| e.to_string())?;
                }
                let mut pos = head;
                let mut i = 0usize;
                while pos < b.len() {
                    let take = sizes[i % sizes.len()].min(b.len() - pos);
                    dec.push(&b[pos..pos + take], &mut out).map_err(|e| e.to_string())?;
                    pos += take;
                    i += 1;
                }
                dec.finish().map_err(|e| e.to_string())?;
                Ok(out.len() as u64)
            };
            let dripped = drip(&[997, 3, 64, 1])?;
            // Whole-buffer pass: chunking must never change the verdict.
            let mut dec = arc_core::StreamDecoder::new();
            let mut out = Vec::new();
            dec.push(b, &mut out).map_err(|e| e.to_string())?;
            dec.finish().map_err(|e| e.to_string())?;
            if out.len() as u64 != dripped {
                return Err(format!(
                    "push-size dependent output: drip {} vs whole {}",
                    dripped,
                    out.len()
                ));
            }
            Ok(dripped)
        }),
    });

    // The same RS container decoded with the scheduled-XOR backend forced
    // (DESIGN.md §13): hostile input must be rejected or repaired
    // identically no matter which GF(2^8) kernel computes the syndromes.
    // The guard restores the automatic backend even when the decode
    // panics; a timed-out (leaked) worker can at worst leave the
    // scheduled backend active, which is byte-identical to the table
    // backend and therefore harmless to later cases.
    struct ScheduledGuard;
    impl Drop for ScheduledGuard {
        fn drop(&mut self) {
            arc_ecc::rs::set_rs_backend(arc_ecc::rs::RsBackend::Auto);
        }
    }
    if let Ok(config) = arc_ecc::EccConfig::rs(16, 4) {
        if let Ok(bytes) = arc_core::arc_engine_encode(&payload, config, 1) {
            let header_len = arc_core::container::unpack(&bytes)
                .map(|u| bytes.len() - u.payload.len())
                .unwrap_or(128);
            targets.push(DecodeTarget {
                name: "container-rs-scheduled".to_string(),
                streams: vec![GoldenStream {
                    name: "ecc-rs-scheduled".to_string(),
                    bytes,
                    header_len,
                    trailer_len: 0,
                }],
                decode: Arc::new(|b, _budget| {
                    arc_ecc::rs::set_rs_backend(arc_ecc::rs::RsBackend::Scheduled);
                    let _guard = ScheduledGuard;
                    arc_core::decode_with_threads(b, 1)
                        .map(|(data, _report)| data.len() as u64)
                        .map_err(|e| e.to_string())
                }),
            });
        }
    }

    // Extension-registry containers: one v2 sharded golden stream per
    // stock extension family, attacked through all three registry-aware
    // decode surfaces — the one-shot `decode_with_registry`, the
    // random-access reader, and the push-based stream decoder. These are
    // exactly the paths the extension support routes through the shared
    // shard walk, so hostile bytes must be rejected there with the same
    // totality as for built-ins.
    let ext_payload: Vec<u8> = (0..12_000u32).map(|i| (i.wrapping_mul(37) % 249) as u8).collect();
    let mut ext_streams: Vec<(String, GoldenStream)> = Vec::new();
    if let Ok(registry) = arc_core::standard_extensions() {
        for name in registry.ids() {
            let Ok(bytes) =
                arc_core::encode_sharded_with_scheme(&ext_payload, &registry, &name, 1, 4096)
            else {
                continue;
            };
            let (header_len, trailer_len) = arc_core::container::unpack(&bytes)
                .map(|u| (u.payload_offset, u.meta.sharding.map_or(0, |s| 3 * s.index_len)))
                .unwrap_or((128, 0));
            let stream =
                GoldenStream { name: format!("ext-{name}-v2"), bytes, header_len, trailer_len };
            ext_streams.push((name, stream));
        }
    }
    for (name, stream) in &ext_streams {
        targets.push(DecodeTarget {
            name: format!("ext-{name}"),
            streams: vec![stream.clone()],
            decode: Arc::new(|b, _budget| {
                let registry = arc_core::standard_extensions().map_err(|e| e.to_string())?;
                arc_core::decode_with_registry(b, 1, &registry)
                    .map(|(data, _report)| data.len() as u64)
                    .map_err(|e| e.to_string())
            }),
        });
    }
    let all_ext: Vec<GoldenStream> = ext_streams.into_iter().map(|(_, s)| s).collect();
    targets.push(DecodeTarget {
        name: "ext-range".to_string(),
        streams: all_ext.clone(),
        decode: Arc::new(|b, _budget| {
            let registry = arc_core::standard_extensions().map_err(|e| e.to_string())?;
            let mut reader = arc_core::ArcReader::open_with_registry(b, 1, &registry)
                .map_err(|e| e.to_string())?;
            let n = reader.data_len();
            let mut produced = 0u64;
            let probes = [
                (0usize, n.min(256)),
                (n / 2, (n / 4).min(n - n / 2)),
                (n.saturating_sub(64), n.min(64)),
            ];
            for (off, len) in probes {
                let (out, _) = reader.decode_range(off, len).map_err(|e| e.to_string())?;
                produced += out.len() as u64;
            }
            Ok(produced)
        }),
    });
    targets.push(DecodeTarget {
        name: "ext-stream".to_string(),
        streams: all_ext,
        decode: Arc::new(|b, _budget| {
            let registry = arc_core::standard_extensions().map_err(|e| e.to_string())?;
            let mut dec = arc_core::StreamDecoder::with_registry(1, registry);
            let mut out = Vec::new();
            for piece in b.chunks(509) {
                dec.push(piece, &mut out).map_err(|e| e.to_string())?;
            }
            dec.finish().map_err(|e| e.to_string())?;
            Ok(out.len() as u64)
        }),
    });

    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_decoder() {
        let targets = builtin_targets();
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "sz",
                "zfp",
                "gzip-like",
                "zstd-like",
                "container",
                "container-range",
                "stream-v2",
                "container-rs-scheduled",
                "ext-bch",
                "ext-ileave-rs",
                "ext-uep-sz",
                "ext-uep-zfp",
                "ext-range",
                "ext-stream",
            ]
        );
        for t in &targets {
            assert!(!t.streams.is_empty(), "target {} has no golden streams", t.name);
            for s in &t.streams {
                assert!(!s.bytes.is_empty(), "stream {} is empty", s.name);
                // Pristine streams must decode cleanly.
                let (status, _) = run_case(&t.decode, &s.bytes, &HostileConfig::default());
                assert!(
                    matches!(status, CaseStatus::Completed { .. }),
                    "pristine {} did not decode: {status:?}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn trailer_families_cover_every_index_boundary() {
        let bytes: Vec<u8> = (0..600u32).map(|i| (i % 256) as u8).collect();
        let plain = GoldenStream {
            name: "plain".to_string(),
            bytes: bytes.clone(),
            header_len: 40,
            trailer_len: 0,
        };
        let tailed =
            GoldenStream { name: "plain".to_string(), bytes, header_len: 40, trailer_len: 96 };
        let cfg = HostileConfig::quick();
        let base = mutations(&plain, &cfg);
        let extra = mutations(&tailed, &cfg);
        assert!(base.iter().all(|(name, _)| !name.starts_with("trunc-tail")));
        // One truncation per trailer byte boundary, plus inflations/splices.
        let tail_cuts = extra.iter().filter(|(name, _)| name.starts_with("trunc-tail")).count();
        assert_eq!(tail_cuts, 96);
        assert!(extra.iter().any(|(name, _)| name.starts_with("inflate-tail")));
        assert!(extra.iter().any(|(name, _)| name.starts_with("splice-tail")));
        assert!(extra.iter().any(|(name, _)| name.starts_with("splice-body")));
        assert!(extra.len() > base.len() + 96);
    }

    #[test]
    fn v2_streams_carry_trailer_hints() {
        let targets = builtin_targets();
        let container = targets.iter().find(|t| t.name == "container").unwrap();
        let v2: Vec<_> = container.streams.iter().filter(|s| s.name.ends_with("-v2")).collect();
        assert_eq!(v2.len(), 2, "expected secded+rs v2 streams");
        for s in v2 {
            assert!(s.trailer_len > 0, "{} missing trailer_len", s.name);
            assert!(s.trailer_len < s.bytes.len());
        }
    }

    #[test]
    fn mutations_are_deterministic() {
        let stream = GoldenStream {
            name: "det".to_string(),
            bytes: (0..500u32).map(|i| (i % 256) as u8).collect(),
            header_len: 40,
            trailer_len: 0,
        };
        let cfg = HostileConfig::quick();
        assert_eq!(mutations(&stream, &cfg), mutations(&stream, &cfg));
        let other = HostileConfig { seed: 1, ..cfg.clone() };
        assert_ne!(mutations(&stream, &cfg), mutations(&stream, &other));
    }

    #[test]
    fn runner_classifies_panic_timeout_and_budget() {
        let cfg = HostileConfig {
            max_case_duration: Duration::from_millis(100),
            max_output_bytes: 1000,
            ..HostileConfig::default()
        };
        let panicker: DecodeFn = Arc::new(|_, _| panic!("boom"));
        let (status, _) = run_case(&panicker, &[0u8], &cfg);
        assert_eq!(status, CaseStatus::Panicked("boom".to_string()));

        let sleeper: DecodeFn = Arc::new(|_, _| {
            thread::sleep(Duration::from_secs(5));
            Ok(0)
        });
        let (status, _) = run_case(&sleeper, &[0u8], &cfg);
        assert_eq!(status, CaseStatus::TimedOut);

        let glutton: DecodeFn = Arc::new(|_, _| Ok(10_000));
        let (status, _) = run_case(&glutton, &[0u8], &cfg);
        assert_eq!(status, CaseStatus::OverBudget { output_bytes: 10_000 });

        let polite: DecodeFn = Arc::new(|_, _| Err("no".to_string()));
        let (status, _) = run_case(&polite, &[0u8], &cfg);
        assert_eq!(status, CaseStatus::Rejected);
    }

    #[test]
    fn report_bookkeeping_flags_failures() {
        let mut r = HostileReport::default();
        r.record("t", "s", "c1", CaseStatus::Rejected);
        r.record("t", "s", "c2", CaseStatus::Completed { output_bytes: 4 });
        r.record("t", "s", "c3", CaseStatus::Panicked("x".to_string()));
        assert_eq!((r.cases, r.rejected, r.completed, r.panicked), (3, 1, 1, 1));
        assert!(!r.is_clean());
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].to_string().contains("t/s/c3"));
        assert!(r.summary().contains("3 cases"));
    }
}
