//! Fault-injection calibration for the stock extension ECC families.
//!
//! Two claims are exercised here:
//!
//! 1. **Calibration sweep** — every family registered by
//!    `arc_core::standard_extensions()` survives fault injection at rates
//!    inside its advertised [`Capability`]: sparse flips spread across the
//!    buffer for all families, plus contiguous byte bursts (the
//!    [`arc_faultsim::burst_byte_run`] model) for the families that
//!    advertise `corrects_burst`.
//! 2. **Interleaving beats bare RS** (property test) — at *identical*
//!    parity overhead, the 64-lane interleaved wrapper corrects data-region
//!    bursts that defeat the bare inner RS code.

use std::sync::OnceLock;

use arc_core::standard_extensions;
use arc_ecc::{EccScheme, Interleaved, RsBlock};
use arc_faultsim::{burst_byte_run, flip_bit, stride_bits};
use proptest::prelude::*;

fn sample(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 73) ^ (i >> 6) ^ (i >> 11)) as u8).collect()
}

/// Largest contiguous data-region burst each family is calibrated to
/// absorb. `ileave-rs` dilutes a burst across 64 lanes; the UEP presets
/// are bounded by their light tail code (RsBlock(8) → t = 4 for `uep-sz`,
/// RsBlock(4) → t = 2 for `uep-zfp`); `bch` does not advertise burst
/// correction at all.
fn burst_budget(name: &str) -> usize {
    match name {
        "ileave-rs" => 300,
        "uep-sz" => 4,
        "uep-zfp" => 2,
        _ => 0,
    }
}

#[test]
fn calibration_sweep_every_family_survives_advertised_faults() {
    let registry = standard_extensions().expect("stock registry");
    let data = sample(128 << 10);
    for name in registry.ids() {
        let scheme = registry.get(&name).expect("registered scheme");
        let cap = scheme.capability();
        assert!(cap.corrects_sparse, "{name} must advertise sparse correction");
        assert!(cap.correctable_per_mb >= 1.0, "{name} advertises a usable rate");
        let enc = scheme.encode(&data);
        let total_bits = enc.len() as u64 * 8;

        // Sparse flips, evenly spread (well under every family's
        // per-codeword budget), shifted per seed so different bits and
        // different codeword offsets are hit each round.
        for seed in 0..4u64 {
            let mut buf = enc.clone();
            for bit in stride_bits(total_bits, 16) {
                flip_bit(&mut buf, (bit + seed * 1009 * 8) % total_bits);
            }
            let (out, report) =
                scheme.decode(&buf, data.len()).unwrap_or_else(|e| panic!("{name}/{seed}: {e}"));
            assert_eq!(out, data, "{name}/{seed}: sparse repair mismatch");
            assert!(!report.is_clean(), "{name}/{seed}: flips should be reported");
        }

        // Contiguous burst in the data region for burst-capable families.
        let burst = burst_budget(&name);
        if burst > 0 {
            assert!(cap.corrects_burst, "{name} has a burst budget but no burst capability");
            for seed in 0..4usize {
                let mut buf = enc.clone();
                let start = 1 + seed * (data.len() - burst - 2) / 3;
                assert_eq!(burst_byte_run(&mut buf, start, burst), burst);
                let (out, report) = scheme
                    .decode(&buf, data.len())
                    .unwrap_or_else(|e| panic!("{name}: burst at {start}: {e}"));
                assert_eq!(out, data, "{name}: burst at {start} not repaired");
                assert!(!report.is_clean());
            }
        }
    }
}

const LANES: usize = 64;
const CODEWORD_DATA: usize = 223; // RsBlock(32) message bytes
const DATA_LEN: usize = 2 * LANES * CODEWORD_DATA; // lanes split into whole codewords

fn encodings() -> &'static (Vec<u8>, Vec<u8>, Vec<u8>) {
    static ENC: OnceLock<(Vec<u8>, Vec<u8>, Vec<u8>)> = OnceLock::new();
    ENC.get_or_init(|| {
        let data = sample(DATA_LEN);
        let inner = RsBlock::new(32).expect("inner RS");
        let wrapped = Interleaved::new(inner.clone(), LANES).expect("wrapper");
        // Identical parity bill: interleaving only permutes the data the
        // inner code sees.
        assert_eq!(inner.parity_len(DATA_LEN), wrapped.parity_len(DATA_LEN));
        let bare = inner.encode(&data);
        let ileaved = wrapped.encode(&data);
        (data, bare, ileaved)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any 40..=400-byte data-region burst puts ≥ 17 errors into some bare
    /// RS codeword (t = 16), so the bare code must fail — while 64-lane
    /// interleaving spreads the same burst to ≤ ⌈400/64⌉ = 7 errors per
    /// codeword and must recover exactly.
    #[test]
    fn interleaving_corrects_bursts_that_defeat_bare_rs(
        len in 40usize..=400,
        frac in 0.0f64..1.0,
    ) {
        let (data, bare, ileaved) = encodings();
        let inner = RsBlock::new(32).expect("inner RS");
        let wrapped = Interleaved::new(inner.clone(), LANES).expect("wrapper");
        let start = (frac * (DATA_LEN - len) as f64) as usize;

        let mut bare_hit = bare.clone();
        burst_byte_run(&mut bare_hit, start, len);
        let bare_result = inner.decode(&bare_hit, data.len());
        prop_assert!(
            bare_result.is_err() || bare_result.is_ok_and(|(out, _)| &out != data),
            "bare RS survived a {len}-byte burst at {start}"
        );

        let mut ileaved_hit = ileaved.clone();
        burst_byte_run(&mut ileaved_hit, start, len);
        let decoded = wrapped.decode(&ileaved_hit, data.len());
        prop_assert!(decoded.is_ok(), "wrapped decode failed: {:?}", decoded.err());
        let (out, report) = decoded.unwrap();
        prop_assert_eq!(&out, data, "interleaved repair mismatch (len={}, start={})", len, start);
        prop_assert!(!report.is_clean());
    }
}
