//! Data-integrity metrics used throughout the paper's evaluation (§4.1.3).
//!
//! * **percent incorrect elements** — values whose error violates the set
//!   bound (Fig 1, Fig 3, Fig 4);
//! * **maximum absolute difference** (Fig 5);
//! * **RMSE / PSNR** per Equations 1–2 (Fig 5);
//! * **compression ratio**.

/// How "incorrect element" is judged against the original data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundSpec {
    /// |x̂ − x| ≤ ε.
    Abs(f64),
    /// |x̂ − x| ≤ ε·|x|.
    PwRel(f64),
}

impl BoundSpec {
    /// True when the pair satisfies the bound.
    #[inline]
    pub fn holds(&self, original: f32, decoded: f32) -> bool {
        let (x, y) = (original as f64, decoded as f64);
        if !x.is_finite() || !y.is_finite() {
            // Non-finite originals count as correct only on exact bit match.
            return original.to_bits() == decoded.to_bits();
        }
        match *self {
            BoundSpec::Abs(e) => (y - x).abs() <= e,
            BoundSpec::PwRel(e) => (y - x).abs() <= e * x.abs(),
        }
    }
}

/// Root-mean-squared error (Equation 1).
pub fn rmse(original: &[f32], decoded: &[f32]) -> f64 {
    assert_eq!(original.len(), decoded.len());
    if original.is_empty() {
        return 0.0;
    }
    let sum: f64 = original
        .iter()
        .zip(decoded)
        .map(|(a, b)| {
            let d = *a as f64 - *b as f64;
            d * d
        })
        .sum();
    (sum / original.len() as f64).sqrt()
}

/// Value range (max − min) of the original data, used by PSNR.
pub fn value_range(data: &[f32]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in data {
        if x.is_finite() {
            lo = lo.min(x as f64);
            hi = hi.max(x as f64);
        }
    }
    if lo.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

/// Peak signal-to-noise ratio in dB (Equation 2). Returns `f64::INFINITY`
/// for identical data.
pub fn psnr(original: &[f32], decoded: &[f32]) -> f64 {
    let e = rmse(original, decoded);
    if e == 0.0 {
        return f64::INFINITY;
    }
    let range = value_range(original);
    if range == 0.0 {
        return f64::NEG_INFINITY;
    }
    20.0 * (range / e).log10()
}

/// Maximum absolute difference between pairs (NaN pairs contribute only if
/// exactly one side is NaN, in which case the result is infinite).
pub fn max_abs_diff(original: &[f32], decoded: &[f32]) -> f64 {
    assert_eq!(original.len(), decoded.len());
    let mut m = 0.0f64;
    for (a, b) in original.iter().zip(decoded) {
        if a.is_nan() && b.is_nan() {
            continue;
        }
        let d = (*a as f64 - *b as f64).abs();
        if d.is_nan() {
            return f64::INFINITY;
        }
        m = m.max(d);
    }
    m
}

/// Count of elements violating the bound.
pub fn incorrect_elements(original: &[f32], decoded: &[f32], bound: BoundSpec) -> usize {
    assert_eq!(original.len(), decoded.len());
    original.iter().zip(decoded).filter(|(a, b)| !bound.holds(**a, **b)).count()
}

/// Percentage (0–100) of elements violating the bound.
pub fn percent_incorrect(original: &[f32], decoded: &[f32], bound: BoundSpec) -> f64 {
    if original.is_empty() {
        return 0.0;
    }
    100.0 * incorrect_elements(original, decoded, bound) as f64 / original.len() as f64
}

/// Compression ratio of f32 data against its compressed size.
pub fn compression_ratio(elements: usize, compressed_len: usize) -> f64 {
    if compressed_len == 0 {
        return f64::INFINITY;
    }
    (elements * 4) as f64 / compressed_len as f64
}

/// A bundle of every §4.1.3 metric for one (original, decoded) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityReport {
    /// Equation-1 RMSE.
    pub rmse: f64,
    /// Equation-2 PSNR (dB).
    pub psnr: f64,
    /// Largest pointwise deviation.
    pub max_abs_diff: f64,
    /// Percent of bound-violating elements, when a bound was given.
    pub percent_incorrect: Option<f64>,
}

/// Compute the full report in one pass over the data.
pub fn integrity_report(
    original: &[f32],
    decoded: &[f32],
    bound: Option<BoundSpec>,
) -> IntegrityReport {
    IntegrityReport {
        rmse: rmse(original, decoded),
        psnr: psnr(original, decoded),
        max_abs_diff: max_abs_diff(original, decoded),
        percent_incorrect: bound.map(|b| percent_incorrect(original, decoded, b)),
    }
}

/// Simple running mean/standard-deviation accumulator for trial aggregation
/// (Fig 5 reports averages and variances across thousands of trials).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation (Welford's algorithm).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return; // infinities tracked separately by callers if needed
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of finite observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 when fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_and_psnr_basics() {
        let a = [0.0f32, 1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        let b = [0.5f32, 1.5, 2.5, 3.5];
        assert!((rmse(&a, &b) - 0.5).abs() < 1e-12);
        // PSNR = 20·log10(3 / 0.5) ≈ 15.563
        assert!((psnr(&a, &b) - 20.0 * (6.0f64).log10()).abs() < 1e-9);
    }

    #[test]
    fn psnr_of_constant_data_is_degenerate() {
        let a = [5.0f32; 8];
        let b = [5.1f32; 8];
        assert_eq!(psnr(&a, &b), f64::NEG_INFINITY);
    }

    #[test]
    fn max_abs_diff_handles_nan() {
        let a = [1.0f32, f32::NAN, 3.0];
        let b = [1.0f32, f32::NAN, 4.5];
        assert!((max_abs_diff(&a, &b) - 1.5).abs() < 1e-12);
        let c = [1.0f32, 2.0, 3.0];
        assert_eq!(max_abs_diff(&a, &c), f64::INFINITY);
    }

    #[test]
    fn incorrect_elements_abs_and_rel() {
        let a = [1.0f32, 10.0, 100.0];
        let b = [1.05f32, 10.5, 105.0];
        assert_eq!(incorrect_elements(&a, &b, BoundSpec::Abs(0.1)), 2);
        assert_eq!(incorrect_elements(&a, &b, BoundSpec::PwRel(0.06)), 0);
        assert_eq!(incorrect_elements(&a, &b, BoundSpec::PwRel(0.04)), 3);
        assert!((percent_incorrect(&a, &b, BoundSpec::Abs(0.1)) - 66.6667).abs() < 0.01);
    }

    #[test]
    fn nonfinite_originals_require_bit_equality() {
        let a = [f32::NAN, f32::INFINITY];
        let b = [f32::NAN, f32::INFINITY];
        assert_eq!(incorrect_elements(&a, &b, BoundSpec::Abs(1.0)), 0);
        let c = [0.0f32, 1.0];
        assert_eq!(incorrect_elements(&a, &c, BoundSpec::Abs(1.0)), 2);
    }

    #[test]
    fn compression_ratio_math() {
        assert!((compression_ratio(1000, 400) - 10.0).abs() < 1e-12);
        assert_eq!(compression_ratio(10, 0), f64::INFINITY);
    }

    #[test]
    fn running_stats_matches_naive() {
        let xs = [3.0f64, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_skips_nonfinite() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f64::INFINITY);
        s.push(f64::NAN);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn integrity_report_bundles() {
        let a = [0.0f32, 2.0];
        let b = [0.5f32, 2.0];
        let r = integrity_report(&a, &b, Some(BoundSpec::Abs(0.1)));
        assert!((r.max_abs_diff - 0.5).abs() < 1e-12);
        assert_eq!(r.percent_incorrect, Some(50.0));
        let r2 = integrity_report(&a, &b, None);
        assert_eq!(r2.percent_incorrect, None);
    }
}
