//! The compressor abstraction: one trait over SZ, ZFP, and the lossless
//! pipelines, mirroring how LibPressio normalizes compressor interactions
//! for the paper's experiments (§4.1.1).

use std::fmt;

use crate::metrics::BoundSpec;

/// A borrowed input dataset (row-major f32 grid).
#[derive(Debug, Clone, Copy)]
pub struct Dataset<'a> {
    /// Values, row-major.
    pub data: &'a [f32],
    /// Extents, slowest-varying first (1–3 dims).
    pub dims: &'a [usize],
}

/// A decompressed dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedDataset {
    /// Values, row-major.
    pub data: Vec<f32>,
    /// Extents, slowest-varying first.
    pub dims: Vec<usize>,
}

/// Unified error type; classification drives the fault study's return-status
/// taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum PressioError {
    /// The codec rejected the stream/configuration (Compressor Exception).
    Codec(String),
    /// The decode exceeded its work budget (Timeout).
    Timeout {
        /// Work demanded by the (possibly corrupt) stream.
        demanded: u64,
        /// Budget allowed.
        budget: u64,
    },
}

impl PressioError {
    /// True for the Timeout class.
    pub fn is_timeout(&self) -> bool {
        matches!(self, PressioError::Timeout { .. })
    }
}

impl fmt::Display for PressioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PressioError::Codec(d) => write!(f, "compressor exception: {d}"),
            PressioError::Timeout { demanded, budget } => {
                write!(f, "decode timeout: work {demanded} over budget {budget}")
            }
        }
    }
}

impl std::error::Error for PressioError {}

impl From<arc_sz::SzError> for PressioError {
    fn from(e: arc_sz::SzError) -> Self {
        match e {
            arc_sz::SzError::WorkBudgetExceeded { demanded, budget } => {
                PressioError::Timeout { demanded, budget }
            }
            other => PressioError::Codec(other.to_string()),
        }
    }
}

impl From<arc_zfp::ZfpError> for PressioError {
    fn from(e: arc_zfp::ZfpError) -> Self {
        match e {
            arc_zfp::ZfpError::WorkBudgetExceeded { demanded, budget } => {
                PressioError::Timeout { demanded, budget }
            }
            other => PressioError::Codec(other.to_string()),
        }
    }
}

/// The LibPressio-like compressor interface.
pub trait Compressor: Send + Sync {
    /// Stable identifier, e.g. `"sz-abs"`.
    fn name(&self) -> String;

    /// Compress a dataset into a self-describing byte stream.
    fn compress(&self, ds: &Dataset<'_>) -> Result<Vec<u8>, PressioError>;

    /// Decompress, limiting output to `max_elements` (the Timeout guard the
    /// fault harness relies on).
    fn decompress_with_limit(
        &self,
        bytes: &[u8],
        max_elements: u64,
    ) -> Result<DecodedDataset, PressioError>;

    /// Decompress with a generous default limit.
    fn decompress(&self, bytes: &[u8]) -> Result<DecodedDataset, PressioError> {
        self.decompress_with_limit(bytes, 1 << 31)
    }

    /// The bound this compressor promises on decompressed values, if any.
    /// Used by the fault study to count incorrect elements.
    fn bound_spec(&self) -> Option<BoundSpec>;
}

/// The five paper configurations plus the lossless baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressorSpec {
    /// SZ with an absolute bound.
    SzAbs(f64),
    /// SZ with a point-wise relative bound.
    SzPwRel(f64),
    /// SZ with a PSNR target.
    SzPsnr(f64),
    /// ZFP accuracy mode.
    ZfpAcc(f64),
    /// ZFP fixed-rate mode (bits per value).
    ZfpRate(f64),
    /// DEFLATE-like lossless ("GZip-like").
    GzipLike,
    /// ZStd-like lossless.
    ZstdLike,
}

impl CompressorSpec {
    /// Stable identifier.
    pub fn name(&self) -> String {
        match self {
            CompressorSpec::SzAbs(e) => format!("sz-abs({e})"),
            CompressorSpec::SzPwRel(e) => format!("sz-pwrel({e})"),
            CompressorSpec::SzPsnr(p) => format!("sz-psnr({p})"),
            CompressorSpec::ZfpAcc(e) => format!("zfp-acc({e})"),
            CompressorSpec::ZfpRate(r) => format!("zfp-rate({r})"),
            CompressorSpec::GzipLike => "gzip-like".into(),
            CompressorSpec::ZstdLike => "zstd-like".into(),
        }
    }

    /// Family label without the parameter (matches the paper's mode names).
    pub fn family(&self) -> &'static str {
        match self {
            CompressorSpec::SzAbs(_) => "SZ-ABS",
            CompressorSpec::SzPwRel(_) => "SZ-PWREL",
            CompressorSpec::SzPsnr(_) => "SZ-PSNR",
            CompressorSpec::ZfpAcc(_) => "ZFP-ACC",
            CompressorSpec::ZfpRate(_) => "ZFP-Rate",
            CompressorSpec::GzipLike => "GZip-like",
            CompressorSpec::ZstdLike => "ZStd-like",
        }
    }

    /// Same mode with a different scalar parameter (bound-tuning helper).
    pub fn with_param(&self, p: f64) -> CompressorSpec {
        match self {
            CompressorSpec::SzAbs(_) => CompressorSpec::SzAbs(p),
            CompressorSpec::SzPwRel(_) => CompressorSpec::SzPwRel(p),
            CompressorSpec::SzPsnr(_) => CompressorSpec::SzPsnr(p),
            CompressorSpec::ZfpAcc(_) => CompressorSpec::ZfpAcc(p),
            CompressorSpec::ZfpRate(_) => CompressorSpec::ZfpRate(p),
            other => *other,
        }
    }

    /// Instantiate the compressor.
    pub fn build(&self) -> Box<dyn Compressor> {
        match *self {
            CompressorSpec::SzAbs(e) => Box::new(SzCompressor::new(arc_sz::ErrorBound::Abs(e))),
            CompressorSpec::SzPwRel(e) => Box::new(SzCompressor::new(arc_sz::ErrorBound::PwRel(e))),
            CompressorSpec::SzPsnr(p) => Box::new(SzCompressor::new(arc_sz::ErrorBound::Psnr(p))),
            CompressorSpec::ZfpAcc(e) => {
                Box::new(ZfpCompressor { mode: arc_zfp::ZfpMode::FixedAccuracy(e) })
            }
            CompressorSpec::ZfpRate(r) => {
                Box::new(ZfpCompressor { mode: arc_zfp::ZfpMode::FixedRate(r) })
            }
            CompressorSpec::GzipLike => Box::new(LosslessCompressor { zstd: false }),
            CompressorSpec::ZstdLike => Box::new(LosslessCompressor { zstd: true }),
        }
    }
}

/// SZ adapter.
pub struct SzCompressor {
    cfg: arc_sz::SzConfig,
}

impl SzCompressor {
    /// Create with a bound and SZ's default quantization bins.
    pub fn new(bound: arc_sz::ErrorBound) -> SzCompressor {
        SzCompressor { cfg: arc_sz::SzConfig { bound, ..Default::default() } }
    }
}

impl Compressor for SzCompressor {
    fn name(&self) -> String {
        match self.cfg.bound {
            arc_sz::ErrorBound::Abs(e) => format!("sz-abs({e})"),
            arc_sz::ErrorBound::PwRel(e) => format!("sz-pwrel({e})"),
            arc_sz::ErrorBound::Psnr(p) => format!("sz-psnr({p})"),
        }
    }

    fn compress(&self, ds: &Dataset<'_>) -> Result<Vec<u8>, PressioError> {
        Ok(arc_sz::compress(ds.data, ds.dims, &self.cfg)?)
    }

    fn decompress_with_limit(
        &self,
        bytes: &[u8],
        max_elements: u64,
    ) -> Result<DecodedDataset, PressioError> {
        let out = arc_sz::decompress_with_limits(bytes, &arc_sz::DecodeLimits { max_elements })?;
        Ok(DecodedDataset { data: out.data, dims: out.dims })
    }

    fn bound_spec(&self) -> Option<BoundSpec> {
        match self.cfg.bound {
            arc_sz::ErrorBound::Abs(e) => Some(BoundSpec::Abs(e)),
            arc_sz::ErrorBound::PwRel(e) => Some(BoundSpec::PwRel(e)),
            // PSNR does not bound each value (§4.1.3 collects no
            // incorrect-element metric for SZ-PSNR).
            arc_sz::ErrorBound::Psnr(_) => None,
        }
    }
}

/// ZFP adapter.
pub struct ZfpCompressor {
    /// Mode to run.
    pub mode: arc_zfp::ZfpMode,
}

impl Compressor for ZfpCompressor {
    fn name(&self) -> String {
        match self.mode {
            arc_zfp::ZfpMode::FixedAccuracy(e) => format!("zfp-acc({e})"),
            arc_zfp::ZfpMode::FixedRate(r) => format!("zfp-rate({r})"),
        }
    }

    fn compress(&self, ds: &Dataset<'_>) -> Result<Vec<u8>, PressioError> {
        Ok(arc_zfp::compress(ds.data, ds.dims, self.mode)?)
    }

    fn decompress_with_limit(
        &self,
        bytes: &[u8],
        max_elements: u64,
    ) -> Result<DecodedDataset, PressioError> {
        let out = arc_zfp::decompress_with_limits(bytes, &arc_zfp::DecodeLimits { max_elements })?;
        Ok(DecodedDataset { data: out.data, dims: out.dims })
    }

    fn bound_spec(&self) -> Option<BoundSpec> {
        match self.mode {
            arc_zfp::ZfpMode::FixedAccuracy(e) => Some(BoundSpec::Abs(e)),
            // Fixed rate cannot bound error (§2.1.2); Fig 3d instead counts
            // elements against the chosen evaluation bound externally.
            arc_zfp::ZfpMode::FixedRate(_) => None,
        }
    }
}

/// Lossless adapter: compresses the raw f32 bytes with a tiny dims header.
pub struct LosslessCompressor {
    /// True → zstd-like, false → deflate-like.
    pub zstd: bool,
}

impl Compressor for LosslessCompressor {
    fn name(&self) -> String {
        if self.zstd {
            "zstd-like".into()
        } else {
            "gzip-like".into()
        }
    }

    fn compress(&self, ds: &Dataset<'_>) -> Result<Vec<u8>, PressioError> {
        if ds.dims.is_empty() || ds.dims.len() > 3 {
            return Err(PressioError::Codec(format!("invalid dims {:?}", ds.dims)));
        }
        let n: usize = ds.dims.iter().product();
        if n != ds.data.len() {
            return Err(PressioError::Codec("dims/data mismatch".into()));
        }
        let mut raw = Vec::with_capacity(4 * ds.data.len() + 16);
        raw.push(ds.dims.len() as u8);
        for &d in ds.dims {
            arc_lossless::bitio::write_varint(&mut raw, d as u64);
        }
        for &x in ds.data {
            raw.extend_from_slice(&x.to_le_bytes());
        }
        Ok(if self.zstd {
            arc_lossless::zstd_like::compress(&raw)
        } else {
            arc_lossless::deflate::compress(&raw)
        })
    }

    fn decompress_with_limit(
        &self,
        bytes: &[u8],
        max_elements: u64,
    ) -> Result<DecodedDataset, PressioError> {
        // The raw layout is dims framing (≤ ~32 bytes) plus 4 bytes per
        // element, so the element budget bounds the decompressed size; an
        // inflated inner length field is rejected before it allocates.
        let byte_budget = max_elements.saturating_mul(4).saturating_add(64);
        let raw = if self.zstd {
            arc_lossless::zstd_like::decompress_with_limit(bytes, byte_budget)
        } else {
            arc_lossless::deflate::decompress_with_limit(bytes, byte_budget)
        }
        .map_err(|e| match e {
            arc_lossless::LosslessError::WorkBudgetExceeded { demanded, budget } => {
                PressioError::Timeout { demanded, budget }
            }
            other => PressioError::Codec(other.to_string()),
        })?;
        if raw.is_empty() {
            return Err(PressioError::Codec("empty payload".into()));
        }
        let ndims = raw[0] as usize;
        if ndims == 0 || ndims > 3 {
            return Err(PressioError::Codec(format!("bad dimensionality {ndims}")));
        }
        let mut pos = 1usize;
        let mut dims = Vec::with_capacity(ndims);
        let mut product = 1u64;
        for _ in 0..ndims {
            let d = arc_lossless::bitio::read_varint(&raw, &mut pos)
                .map_err(|e| PressioError::Codec(e.to_string()))?;
            product = product
                .checked_mul(d)
                .ok_or_else(|| PressioError::Codec("dims overflow".into()))?;
            dims.push(d as usize);
        }
        if product > max_elements {
            return Err(PressioError::Timeout { demanded: product, budget: max_elements });
        }
        let expected = product as usize * 4;
        if raw.len() - pos != expected {
            return Err(PressioError::Codec(format!(
                "payload {} bytes, dims demand {expected}",
                raw.len() - pos
            )));
        }
        let data: Vec<f32> = raw[pos..]
            .chunks_exact(4)
            .map(|c| {
                let mut b = [0u8; 4];
                b.copy_from_slice(c);
                f32::from_le_bytes(b)
            })
            .collect();
        Ok(DecodedDataset { data, dims })
    }

    fn bound_spec(&self) -> Option<BoundSpec> {
        Some(BoundSpec::Abs(0.0)) // lossless: any deviation is incorrect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.013).sin() * 4.0).collect()
    }

    #[test]
    fn all_specs_round_trip() {
        let data = field(40 * 40);
        let dims = [40usize, 40];
        let ds = Dataset { data: &data, dims: &dims };
        let specs = [
            CompressorSpec::SzAbs(0.01),
            CompressorSpec::SzPwRel(0.05),
            CompressorSpec::SzPsnr(80.0),
            CompressorSpec::ZfpAcc(0.01),
            CompressorSpec::ZfpRate(8.0),
            CompressorSpec::GzipLike,
            CompressorSpec::ZstdLike,
        ];
        for spec in specs {
            let c = spec.build();
            let packed = c.compress(&ds).unwrap();
            let out = c.decompress(&packed).unwrap();
            assert_eq!(out.dims, dims.to_vec(), "{}", spec.name());
            assert_eq!(out.data.len(), data.len(), "{}", spec.name());
            if let Some(bound) = c.bound_spec() {
                let bad = crate::metrics::incorrect_elements(&data, &out.data, bound);
                assert_eq!(bad, 0, "{} violated its own bound", spec.name());
            }
        }
    }

    #[test]
    fn lossless_is_bit_exact() {
        let data = field(500);
        let ds = Dataset { data: &data, dims: &[500] };
        for spec in [CompressorSpec::GzipLike, CompressorSpec::ZstdLike] {
            let c = spec.build();
            let out = c.decompress(&c.compress(&ds).unwrap()).unwrap();
            assert_eq!(out.data, data);
        }
    }

    #[test]
    fn timeout_classification_propagates() {
        let data = field(64 * 64);
        let ds = Dataset { data: &data, dims: &[64, 64] };
        for spec in
            [CompressorSpec::SzAbs(0.01), CompressorSpec::ZfpAcc(0.01), CompressorSpec::ZstdLike]
        {
            let c = spec.build();
            let packed = c.compress(&ds).unwrap();
            let err = c.decompress_with_limit(&packed, 16).unwrap_err();
            assert!(err.is_timeout(), "{}: {err}", spec.name());
        }
    }

    #[test]
    fn spec_name_and_family() {
        assert_eq!(CompressorSpec::SzAbs(0.1).family(), "SZ-ABS");
        assert_eq!(CompressorSpec::ZfpRate(8.0).family(), "ZFP-Rate");
        assert!(CompressorSpec::SzPwRel(0.1).name().contains("pwrel"));
    }

    #[test]
    fn with_param_rebinds() {
        let s = CompressorSpec::ZfpAcc(0.1).with_param(0.5);
        assert_eq!(s, CompressorSpec::ZfpAcc(0.5));
        assert_eq!(CompressorSpec::GzipLike.with_param(9.0), CompressorSpec::GzipLike);
    }

    #[test]
    fn corrupt_streams_surface_as_exceptions_not_panics() {
        let data = field(32 * 32);
        let ds = Dataset { data: &data, dims: &[32, 32] };
        for spec in [CompressorSpec::SzAbs(0.1), CompressorSpec::ZfpRate(8.0)] {
            let c = spec.build();
            let packed = c.compress(&ds).unwrap();
            for i in (0..packed.len()).step_by(11) {
                let mut bad = packed.clone();
                bad[i] ^= 0x80;
                let _ = c.decompress_with_limit(&bad, 1 << 20);
            }
        }
    }
}

impl CompressorSpec {
    /// Parse a textual spec: `"<family>"` or `"<family>:<param>"`, e.g.
    /// `sz-abs:0.1`, `sz-pwrel:0.01`, `sz-psnr:90`, `zfp-acc:1e-3`,
    /// `zfp-rate:8`, `gzip-like`, `zstd-like`. This is the "registry by
    /// name" LibPressio offers; the CLI-facing entry point of the
    /// abstraction layer.
    pub fn parse(spec: &str) -> Result<CompressorSpec, PressioError> {
        let (family, param) = match spec.split_once(':') {
            Some((f, p)) => (f, Some(p)),
            None => (spec, None),
        };
        let num = |what: &str| -> Result<f64, PressioError> {
            param
                .ok_or_else(|| {
                    PressioError::Codec(format!("{family} needs {what}, e.g. {family}:0.1"))
                })?
                .parse::<f64>()
                .map_err(|_| PressioError::Codec(format!("bad {what} in {spec:?}")))
        };
        let parsed = match family {
            "sz-abs" => CompressorSpec::SzAbs(num("an error bound")?),
            "sz-pwrel" => CompressorSpec::SzPwRel(num("a relative bound")?),
            "sz-psnr" => CompressorSpec::SzPsnr(num("a PSNR target")?),
            "zfp-acc" => CompressorSpec::ZfpAcc(num("a tolerance")?),
            "zfp-rate" => CompressorSpec::ZfpRate(num("a rate")?),
            "gzip-like" => CompressorSpec::GzipLike,
            "zstd-like" => CompressorSpec::ZstdLike,
            other => {
                return Err(PressioError::Codec(format!(
                    "unknown compressor {other:?}; known: sz-abs, sz-pwrel, sz-psnr, zfp-acc, zfp-rate, gzip-like, zstd-like"
                )))
            }
        };
        if param.is_some() && matches!(parsed, CompressorSpec::GzipLike | CompressorSpec::ZstdLike)
        {
            return Err(PressioError::Codec(format!("{family} takes no parameter")));
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod parse_tests {
    use super::*;

    #[test]
    fn parses_every_family() {
        assert_eq!(CompressorSpec::parse("sz-abs:0.1").unwrap(), CompressorSpec::SzAbs(0.1));
        assert_eq!(CompressorSpec::parse("sz-pwrel:1e-2").unwrap(), CompressorSpec::SzPwRel(0.01));
        assert_eq!(CompressorSpec::parse("sz-psnr:90").unwrap(), CompressorSpec::SzPsnr(90.0));
        assert_eq!(CompressorSpec::parse("zfp-acc:0.5").unwrap(), CompressorSpec::ZfpAcc(0.5));
        assert_eq!(CompressorSpec::parse("zfp-rate:8").unwrap(), CompressorSpec::ZfpRate(8.0));
        assert_eq!(CompressorSpec::parse("gzip-like").unwrap(), CompressorSpec::GzipLike);
        assert_eq!(CompressorSpec::parse("zstd-like").unwrap(), CompressorSpec::ZstdLike);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(CompressorSpec::parse("sz-abs").is_err());
        assert!(CompressorSpec::parse("sz-abs:nan?").is_err());
        assert!(CompressorSpec::parse("mystery:1").is_err());
        assert!(CompressorSpec::parse("zstd-like:3").is_err());
    }

    #[test]
    fn parsed_specs_build_and_round_trip() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
        let ds = Dataset { data: &data, dims: &[16, 16] };
        for spec in ["sz-abs:0.01", "zfp-rate:8", "zstd-like"] {
            let c = CompressorSpec::parse(spec).unwrap().build();
            let out = c.decompress(&c.compress(&ds).unwrap()).unwrap();
            assert_eq!(out.data.len(), 256, "{spec}");
        }
    }
}
