//! Error-bound tuning: find the mode parameter that hits a target
//! compression ratio.
//!
//! §4.4 of the paper adjusts each mode's error bound to reach compression
//! ratios of 50×, 25×, 13×, and 7×. Compression ratio is monotone (noisily)
//! in the bound, so a bisection over `log₁₀(param)` converges in a couple of
//! dozen compress calls.

use crate::compressors::{CompressorSpec, Dataset};

/// Result of a tuning run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedBound {
    /// The parameter value found.
    pub param: f64,
    /// The ratio it achieves on the probe data.
    pub achieved_ratio: f64,
}

/// Search for the parameter of `spec` whose compression ratio on `ds` is
/// closest to `target_ratio`. `lo`/`hi` bracket the parameter in its natural
/// units (e.g. 1e-9..1e4 for absolute bounds, 20..110 for PSNR).
///
/// Returns the best parameter seen; never fails, but the achieved ratio can
/// be far from the target when the bracket cannot reach it (e.g. ZFP-Rate's
/// ratio is pinned at 32/rate).
pub fn tune_for_ratio(
    spec: CompressorSpec,
    ds: &Dataset<'_>,
    target_ratio: f64,
    lo: f64,
    hi: f64,
    iterations: usize,
) -> TunedBound {
    assert!(lo > 0.0 && hi > lo && target_ratio > 0.0);
    let ratio_of = |param: f64| -> f64 {
        let c = spec.with_param(param).build();
        match c.compress(ds) {
            Ok(bytes) => crate::metrics::compression_ratio(ds.data.len(), bytes.len()),
            Err(_) => 0.0,
        }
    };
    // Direction: does the ratio increase with the parameter? (True for
    // error bounds, false for PSNR targets and rates.)
    let r_lo = ratio_of(lo);
    let r_hi = ratio_of(hi);
    let increasing = r_hi >= r_lo;
    let (mut llo, mut lhi) = (lo.log10(), hi.log10());
    let mut best = if (r_lo - target_ratio).abs() <= (r_hi - target_ratio).abs() {
        TunedBound { param: lo, achieved_ratio: r_lo }
    } else {
        TunedBound { param: hi, achieved_ratio: r_hi }
    };
    for _ in 0..iterations {
        let mid = 10f64.powf(0.5 * (llo + lhi));
        let r = ratio_of(mid);
        if (r - target_ratio).abs() < (best.achieved_ratio - target_ratio).abs() {
            best = TunedBound { param: mid, achieved_ratio: r };
        }
        let too_high = r > target_ratio;
        if too_high == increasing {
            lhi = mid.log10();
        } else {
            llo = mid.log10();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> (Vec<f32>, Vec<usize>) {
        let dims = vec![96usize, 96];
        let data: Vec<f32> = (0..dims[0] * dims[1])
            .map(|i| {
                let r = (i / 96) as f32;
                let c = (i % 96) as f32;
                (r * 0.07).sin() * 12.0 + (c * 0.05).cos() * 8.0 + 0.3 * (r * c * 0.001).sin()
            })
            .collect();
        (data, dims)
    }

    #[test]
    fn tunes_sz_abs_to_target_ratio() {
        let (data, dims) = probe();
        let ds = Dataset { data: &data, dims: &dims };
        for target in [25.0, 13.0, 7.0] {
            let t = tune_for_ratio(CompressorSpec::SzAbs(0.1), &ds, target, 1e-8, 1e3, 24);
            assert!(
                (t.achieved_ratio - target).abs() / target < 0.35,
                "target {target}: got {:?}",
                t
            );
        }
    }

    #[test]
    fn tunes_zfp_acc() {
        let (data, dims) = probe();
        let ds = Dataset { data: &data, dims: &dims };
        let t = tune_for_ratio(CompressorSpec::ZfpAcc(0.1), &ds, 10.0, 1e-8, 1e3, 24);
        assert!((t.achieved_ratio - 10.0).abs() < 5.0, "{t:?}");
    }

    #[test]
    fn tunes_decreasing_direction_for_psnr() {
        // Higher PSNR target ⇒ lower ratio: the search must handle the
        // decreasing direction.
        let (data, dims) = probe();
        let ds = Dataset { data: &data, dims: &dims };
        let t = tune_for_ratio(CompressorSpec::SzPsnr(80.0), &ds, 10.0, 20.0, 140.0, 24);
        assert!(t.achieved_ratio > 4.0 && t.achieved_ratio < 40.0, "{t:?}");
    }
}
