//! # arc-pressio — compressor abstraction layer
//!
//! The LibPressio stand-in (§4.1.1 of the ARC paper, [Underwood 2020]):
//! a single [`Compressor`] trait normalizing the SZ-like and ZFP-like lossy
//! codecs and the lossless pipelines, the data-integrity metrics the fault
//! study collects (§4.1.3), and a bound-tuning search used to hit target
//! compression ratios (§4.4).
//!
//! ```
//! use arc_pressio::{CompressorSpec, Dataset};
//!
//! let data: Vec<f32> = (0..64 * 64).map(|i| (i as f32 * 0.01).sin()).collect();
//! let ds = Dataset { data: &data, dims: &[64, 64] };
//! let sz = CompressorSpec::SzAbs(1e-3).build();
//! let packed = sz.compress(&ds).unwrap();
//! let out = sz.decompress(&packed).unwrap();
//! assert_eq!(out.dims, vec![64, 64]);
//! ```

#![warn(missing_docs)]

pub mod compressors;
pub mod metrics;
pub mod tuning;

pub use compressors::{
    Compressor, CompressorSpec, Dataset, DecodedDataset, LosslessCompressor, PressioError,
    SzCompressor, ZfpCompressor,
};
pub use metrics::{
    compression_ratio, incorrect_elements, integrity_report, max_abs_diff, percent_incorrect, psnr,
    rmse, value_range, BoundSpec, IntegrityReport, RunningStats,
};
pub use tuning::{tune_for_ratio, TunedBound};
