//! Property-based tests for the §4.1.3 integrity metrics: the algebraic
//! invariants that every figure in the paper's evaluation leans on.
//!
//! * zero noise ⇒ infinite PSNR, zero RMSE, zero max-abs-diff, 0% incorrect;
//! * scaling an additive noise vector by k ≥ 1 scales RMSE and max-abs-diff
//!   by exactly k (in exact f64 arithmetic on f32-representable noise);
//! * percent-incorrect under an absolute bound is monotone nondecreasing as
//!   the noise grows.

use proptest::prelude::*;

use arc_pressio::{incorrect_elements, max_abs_diff, percent_incorrect, psnr, rmse, BoundSpec};

fn arb_signal() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1e4f32..1e4f32, 1..128)
}

/// Noise drawn from exact powers of two, so multiplying by a power-of-two
/// scale is exact in both f32 and f64 and the k-scaling law holds with no
/// rounding slop.
fn arb_noise(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (0u32..24).prop_map(|e| ((e as i32 - 20) as f64).exp2() as f32),
        n..=n,
    )
}

fn arb_signal_with_noise() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    arb_signal().prop_flat_map(|signal| {
        let n = signal.len();
        (Just(signal), arb_noise(n))
    })
}

fn add(signal: &[f32], noise: &[f32], k: f32) -> Vec<f32> {
    signal.iter().zip(noise).map(|(s, d)| s + k * d).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zero_noise_means_perfect_metrics(signal in arb_signal()) {
        prop_assert_eq!(rmse(&signal, &signal), 0.0);
        prop_assert_eq!(psnr(&signal, &signal), f64::INFINITY);
        prop_assert_eq!(max_abs_diff(&signal, &signal), 0.0);
        for bound in [BoundSpec::Abs(1e-9), BoundSpec::PwRel(1e-9)] {
            prop_assert_eq!(incorrect_elements(&signal, &signal, bound), 0);
            prop_assert_eq!(percent_incorrect(&signal, &signal, bound), 0.0);
        }
    }

    #[test]
    fn power_of_two_scaling_scales_rmse_and_max_diff_exactly(
        signal in arb_signal(),
        k_exp in 1u32..8,
    ) {
        // Compare metrics of (signal, signal+noise) against
        // (signal, signal+k·noise) with k a power of two: RMSE and
        // max-abs-diff are homogeneous of degree 1 in the noise. Computing
        // each difference directly (0 vs noise) keeps the arithmetic exact.
        let noise = (0..signal.len()).map(|i| (-(i as i32 % 16)) as f32).collect::<Vec<_>>();
        let zeros = vec![0.0f32; signal.len()];
        let k = (k_exp as f64).exp2() as f32;
        let base = add(&zeros, &noise, 1.0);
        let scaled = add(&zeros, &noise, k);
        prop_assert_eq!(rmse(&zeros, &scaled), k as f64 * rmse(&zeros, &base));
        prop_assert_eq!(
            max_abs_diff(&zeros, &scaled),
            k as f64 * max_abs_diff(&zeros, &base)
        );
    }

    #[test]
    fn percent_incorrect_is_monotone_in_noise_scale(
        (signal, noise) in arb_signal_with_noise(),
    ) {
        let bound = BoundSpec::Abs(0.5);
        let mut prev = -1.0f64;
        for k_exp in 0..6 {
            let k = (k_exp as f64).exp2() as f32;
            let decoded = add(&signal, &noise, k);
            let pct = percent_incorrect(&signal, &decoded, bound);
            prop_assert!(
                pct + 1e-12 >= prev,
                "percent_incorrect fell from {prev} to {pct} at k={k}"
            );
            prop_assert!((0.0..=100.0).contains(&pct));
            prev = pct;
        }
    }

    #[test]
    fn psnr_decreases_as_noise_grows(signal in arb_signal()) {
        // PSNR is a strictly decreasing function of RMSE for a fixed value
        // range, so doubling the noise can never raise it.
        prop_assume!(signal.len() >= 2);
        let noise: Vec<f32> = (0..signal.len()).map(|i| 0.125 * ((i % 7) as f32 + 1.0)).collect();
        let mut prev = f64::INFINITY;
        for k_exp in 0..5 {
            let k = (k_exp as f64).exp2() as f32;
            let p = psnr(&signal, &add(&signal, &noise, k));
            prop_assert!(p <= prev + 1e-9, "PSNR rose from {prev} to {p} at k={k}");
            prev = p;
        }
    }
}
